//! The staging tier: one writer stream fanned out to N consumer sessions.
//!
//! The SST engine pairs each writer group with exactly one reader, so only
//! one analysis could ever watch a run. [`StagingService`] generalizes the
//! reader side into a small server: it drains an [`SstReader`] like the
//! endpoint does, but instead of driving one fixed analysis it
//!
//! * **parks** every delivered step to the BP file engine (the same
//!   `producer_*.bp4l` files the degradation ladder writes), making the
//!   stream replayable;
//! * **renders** each step once per *distinct* session spec through a
//!   [`FrameCache`] — N consumers asking for the same (step, camera,
//!   colormap) cost one rasterization and N−1 cache hits;
//! * **fans out** the encoded frames to every open consumer session under
//!   per-session credit back-pressure (a slow consumer stalls only
//!   itself; a dead one is detached after a bounded wait);
//! * **catches up late joiners** by replaying the parked BP files through
//!   the same cache before live frames resume.
//!
//! Sessions attach in-process (the [`StagingHandle`]) or over TCP
//! ([`StagingService::listen_consumers`] + [`ConsumerClient::connect`]),
//! using the protocol in [`protocol`]. All potentially blocking waits on
//! real sockets/channels run under `Comm::external_wait`, so the service
//! works in both `NEK_SCHED_MODE`s.

pub mod live;
pub mod protocol;

pub use live::{FollowClient, LiveServer};
pub use protocol::{DownMsg, FrameMsg, SessionSpec, TelemetryMsg};

use crate::bp;
use crate::engine::SstReader;
use crate::file_engine::{BpFileReader, BpFileWriter};
use commsim::Comm;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use meshdata::MultiBlock;
use render::pipeline::{FilterKind, RenderPass};
use render::{Colormap, FrameCache, RenderPipeline, RenderScratch};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the service will wait (real time) for a stalled session to
/// replenish credits before detaching it.
const CREDIT_WAIT: Duration = Duration::from_secs(10);
/// Credit poll interval while stalled.
const CREDIT_POLL: Duration = Duration::from_millis(20);

/// Per-session fan-out accounting, reported and fed into `staging/*`
/// telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Session id (attach order).
    pub id: usize,
    /// Frames delivered to this consumer.
    pub frames_sent: u64,
    /// Encoded PNG bytes delivered.
    pub bytes_sent: u64,
    /// Frames served from the staging cache.
    pub cache_hits: u64,
    /// Times the service blocked waiting for this session's credits.
    pub credit_stalls: u64,
    /// Frames replayed from the parked BP files at join time.
    pub catchup_steps: u64,
    /// True when the session was detached (stalled past the credit bound
    /// or its link died) rather than running to `End`.
    pub detached: bool,
}

/// Outcome of a [`StagingService::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagingReport {
    /// Steps drained from the writer stream.
    pub steps: u64,
    /// Steps parked to the BP file engine (per producer appends summed).
    pub parked_appends: u64,
    /// Frame-cache hits across all sessions (live + catch-up).
    pub cache_hits: u64,
    /// Frame-cache misses (actual rasterizations).
    pub cache_misses: u64,
    /// Wire frames lost to mid-frame connection deaths.
    pub short_reads: u64,
    /// Payload bytes drained off the writer wire.
    pub bytes_received: u64,
    /// Per-session accounting, attach order.
    pub sessions: Vec<SessionStats>,
    /// Virtual time when the stream finished.
    pub finish_time: f64,
}

impl StagingReport {
    /// Total frames fanned out across sessions.
    pub fn frames_sent(&self) -> u64 {
        self.sessions.iter().map(|s| s.frames_sent).sum()
    }

    /// Cache hit rate over all lookups, 0.0 when nothing rendered.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

enum DownLink {
    Local(Sender<DownMsg>),
    Tcp(TcpStream),
}

struct Session {
    pipeline: RenderPipeline,
    down: DownLink,
    credit_rx: Receiver<u32>,
    credits: i64,
    stats: SessionStats,
    open: bool,
}

struct PendingSession {
    spec: SessionSpec,
    credits: u32,
    down: DownLink,
    credit_rx: Receiver<u32>,
}

/// Cloneable attach point for new consumer sessions; safe to hand to
/// other threads (the TCP accept loop uses one internally).
#[derive(Clone)]
pub struct StagingHandle {
    joiners: Sender<PendingSession>,
    attached: Arc<AtomicUsize>,
}

impl StagingHandle {
    /// Open an in-process consumer session with `credits` initial frame
    /// credits. The session is admitted at the service's next step
    /// boundary (with catch-up from the parked files if the stream is
    /// already running).
    pub fn attach_local(&self, spec: SessionSpec, credits: u32) -> ConsumerClient {
        let (down_tx, down_rx) = unbounded();
        let (credit_tx, credit_rx) = bounded(1024);
        let _ = self.joiners.send(PendingSession {
            spec,
            credits,
            down: DownLink::Local(down_tx),
            credit_rx,
        });
        self.attached.fetch_add(1, Ordering::SeqCst);
        ConsumerClient {
            inner: ClientInner::Local {
                frames: down_rx,
                credits: credit_tx,
            },
        }
    }

    /// Sessions attached through this handle (admitted or pending).
    pub fn attached(&self) -> usize {
        self.attached.load(Ordering::SeqCst)
    }
}

enum ClientInner {
    Local {
        frames: Receiver<DownMsg>,
        credits: Sender<u32>,
    },
    Tcp(TcpStream),
}

/// Consumer-side handle on one staging session: receive frames, grant
/// credits. Works identically for in-process and TCP sessions.
pub struct ConsumerClient {
    inner: ClientInner,
}

impl ConsumerClient {
    /// Open a TCP consumer session against a staging service's consumer
    /// listener.
    ///
    /// # Errors
    /// Socket connect/write failures.
    pub fn connect(addr: &str, spec: &SessionSpec, credits: u32) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        protocol::write_hello(&mut stream, spec, credits, false)?;
        Ok(Self {
            inner: ClientInner::Tcp(stream),
        })
    }

    /// Grant `n` more frame credits to the service.
    ///
    /// # Errors
    /// Write failures (tcp) or a gone service (local).
    pub fn grant(&mut self, n: u32) -> std::io::Result<()> {
        match &mut self.inner {
            ClientInner::Local { credits, .. } => credits.send(n).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "staging service gone")
            }),
            ClientInner::Tcp(stream) => protocol::write_credit(stream, n),
        }
    }

    /// Wait up to `timeout` for the next frame. `Ok(None)` is the end of
    /// the stream (explicit `End` or a closed link).
    ///
    /// # Errors
    /// Wire/protocol failures; a plain timeout is
    /// `ErrorKind::TimedOut`.
    pub fn next_frame(&mut self, timeout: Duration) -> std::io::Result<Option<FrameMsg>> {
        match &mut self.inner {
            ClientInner::Local { frames, .. } => match frames.recv_timeout(timeout) {
                Ok(DownMsg::Frame(f)) => Ok(Some(f)),
                // Telemetry never targets a frame session.
                Ok(DownMsg::Telemetry(_)) | Ok(DownMsg::End) => Ok(None),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no frame within timeout",
                )),
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Ok(None),
            },
            ClientInner::Tcp(stream) => {
                stream.set_read_timeout(Some(timeout)).ok();
                match protocol::read_down(stream) {
                    Ok(Some(DownMsg::Frame(f))) => Ok(Some(f)),
                    Ok(Some(DownMsg::Telemetry(_))) | Ok(Some(DownMsg::End)) | Ok(None) => {
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Drain the whole stream, granting one credit back per frame.
    ///
    /// # Errors
    /// Wire/protocol failures or `timeout` expiring between frames.
    pub fn drain(&mut self, timeout: Duration) -> std::io::Result<Vec<FrameMsg>> {
        let mut frames = Vec::new();
        while let Some(f) = self.next_frame(timeout)? {
            frames.push(f);
            // Best effort: the service may already have sent End and gone
            // away, which is not a drain failure.
            let _ = self.grant(1);
        }
        Ok(frames)
    }
}

/// The multi-client staging service (see module docs).
pub struct StagingService {
    reader: SstReader,
    n_sim_ranks: usize,
    park_dir: PathBuf,
    cache: FrameCache,
    scratch: RenderScratch,
    sessions: Vec<Session>,
    joiners: Receiver<PendingSession>,
    handle: StagingHandle,
    parkers: BTreeMap<usize, BpFileWriter>,
    parked_steps: Vec<u64>,
    next_session: usize,
    live_hub: Option<telemetry::TelemetryHub>,
    live_stop: Arc<std::sync::atomic::AtomicBool>,
}

impl StagingService {
    /// Wrap `reader` into a staging service parking steps under
    /// `park_dir` and caching up to `cache_frames` rendered frame sets.
    pub fn new(
        reader: SstReader,
        n_sim_ranks: usize,
        park_dir: impl Into<PathBuf>,
        cache_frames: usize,
    ) -> Self {
        let (joiners_tx, joiners_rx) = unbounded();
        Self {
            reader,
            n_sim_ranks,
            park_dir: park_dir.into(),
            cache: FrameCache::new(cache_frames),
            scratch: RenderScratch::default(),
            sessions: Vec::new(),
            joiners: joiners_rx,
            handle: StagingHandle {
                joiners: joiners_tx,
                attached: Arc::new(AtomicUsize::new(0)),
            },
            parkers: BTreeMap::new(),
            parked_steps: Vec::new(),
            next_session: 0,
            live_hub: None,
            live_stop: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// The attach point for consumer sessions (cloneable, thread-safe).
    pub fn handle(&self) -> StagingHandle {
        self.handle.clone()
    }

    /// Serve live telemetry follow sessions off the consumer listener:
    /// a `Hello` with the follow flag set streams delta snapshots of
    /// `hub` (see [`live`]) instead of opening a frame session. Must be
    /// called before [`StagingService::listen_consumers`].
    pub fn set_live_hub(&mut self, hub: telemetry::TelemetryHub) {
        self.live_hub = Some(hub);
    }

    /// Accept TCP consumer sessions off `listener` until the service
    /// drops its handle side. Each connection sends a `Hello`; a reader
    /// thread per connection forwards its credit grants. A `Hello` with
    /// the follow flag set opens a live telemetry session instead (only
    /// honored after [`StagingService::set_live_hub`]; otherwise the
    /// connection gets an immediate `End`).
    pub fn listen_consumers(&self, listener: TcpListener) {
        let handle = self.handle();
        let live_hub = self.live_hub.clone();
        let live_stop = self.live_stop.clone();
        std::thread::spawn(move || {
            loop {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                stream.set_nodelay(true).ok();
                let Ok((spec, credits, follow)) = protocol::read_hello(&mut stream) else {
                    continue;
                };
                if follow {
                    match &live_hub {
                        Some(hub) => {
                            let hub = hub.clone();
                            let stop = live_stop.clone();
                            std::thread::spawn(move || live::serve_follow(stream, &hub, &stop));
                        }
                        None => {
                            let _ = protocol::write_down(&mut stream, &DownMsg::End);
                        }
                    }
                    continue;
                }
                let (credit_tx, credit_rx) = bounded(1024);
                let Ok(read_half) = stream.try_clone() else {
                    continue;
                };
                std::thread::spawn(move || forward_credits(read_half, credit_tx));
                if handle
                    .joiners
                    .send(PendingSession {
                        spec,
                        credits,
                        down: DownLink::Tcp(stream),
                        credit_rx,
                    })
                    .is_err()
                {
                    return;
                }
                handle.attached.fetch_add(1, Ordering::SeqCst);
            }
        });
    }

    fn build_pipeline(spec: &SessionSpec) -> RenderPipeline {
        RenderPipeline {
            width: spec.width,
            height: spec.height,
            passes: vec![RenderPass {
                name: format!("{}_staged", spec.array),
                filter: FilterKind::Slice {
                    origin: [0.5, 0.5, 0.5],
                    normal: [0.0, 1.0, 0.0],
                },
                array: spec.array.clone(),
                colormap: Colormap::by_name(&spec.colormap),
                range: None,
                camera_dir: spec.camera_dir,
            }],
            compositing: render::pipeline::Compositing::Gather,
            legend: false,
        }
    }

    /// Admit every pending joiner: build its pipeline, replay the parked
    /// steps through the cache, then it rides the live stream.
    fn admit_joiners(&mut self, comm: &mut Comm) -> insitu::Result<()> {
        while let Ok(pending) = self.joiners.try_recv() {
            let id = self.next_session;
            self.next_session += 1;
            let mut session = Session {
                pipeline: Self::build_pipeline(&pending.spec),
                down: pending.down,
                credit_rx: pending.credit_rx,
                credits: i64::from(pending.credits),
                stats: SessionStats {
                    id,
                    frames_sent: 0,
                    bytes_sent: 0,
                    cache_hits: 0,
                    credit_stalls: 0,
                    catchup_steps: 0,
                    detached: false,
                },
                open: true,
            };
            comm.telemetry().counter("staging/sessions").inc();
            self.catch_up(comm, &mut session)?;
            self.sessions.push(session);
        }
        Ok(())
    }

    /// Replay every parked step to one late-joining session, through the
    /// frame cache (a spec another session already watches replays as
    /// pure cache hits).
    fn catch_up(&mut self, comm: &mut Comm, session: &mut Session) -> insitu::Result<()> {
        if self.parked_steps.is_empty() {
            return Ok(());
        }
        let _span = comm.span("staging/catchup");
        // Merge the parked per-producer files back into per-step blocks.
        let mut steps: BTreeMap<u64, (f64, Vec<(u32, meshdata::UnstructuredGrid)>)> =
            BTreeMap::new();
        for producer in self.parkers.keys() {
            let path = self.park_dir.join(format!("producer_{producer:05}.bp4l"));
            let mut file = BpFileReader::open(&path)
                .map_err(|e| insitu::Error::Analysis(format!("catch-up open {path:?}: {e}")))?;
            while let Some(data) = file
                .next_step()
                .map_err(|e| insitu::Error::Analysis(format!("catch-up read {path:?}: {e}")))?
            {
                let entry = steps.entry(data.step).or_insert((data.time, Vec::new()));
                entry.1.extend(data.blocks);
            }
        }
        for (step, (_time, blocks)) in steps {
            let mut mb = MultiBlock::new(self.n_sim_ranks);
            for (idx, grid) in blocks {
                mb.blocks[idx as usize] = Some(grid);
            }
            let (images, hit) =
                session
                    .pipeline
                    .execute_cached(comm, &mb, step, &mut self.scratch, &mut self.cache);
            session.stats.catchup_steps += 1;
            comm.telemetry().counter("staging/catchup_steps").inc();
            Self::deliver(comm, session, step, hit, images);
        }
        Ok(())
    }

    /// Send one step's images to a session, blocking (bounded) on its
    /// credits. A session that stalls past [`CREDIT_WAIT`] or whose link
    /// died is detached.
    fn deliver(
        comm: &mut Comm,
        session: &mut Session,
        step: u64,
        cache_hit: bool,
        images: Vec<render::pipeline::RenderedImage>,
    ) {
        if !session.open {
            return;
        }
        for img in images {
            let Some(png) = img.png else { continue };
            // Top up from the session's credit feed without blocking.
            while let Ok(n) = session.credit_rx.try_recv() {
                session.credits += i64::from(n);
            }
            if session.credits <= 0 {
                session.stats.credit_stalls += 1;
                comm.telemetry().counter("staging/credit_stalls").inc();
                let mut waited = Duration::ZERO;
                while session.credits <= 0 {
                    let credit_rx = &session.credit_rx;
                    match comm.external_wait(|| credit_rx.recv_timeout(CREDIT_POLL)) {
                        Ok(n) => session.credits += i64::from(n),
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                            waited += CREDIT_POLL;
                            if waited >= CREDIT_WAIT {
                                session.open = false;
                                session.stats.detached = true;
                                return;
                            }
                        }
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                            session.open = false;
                            session.stats.detached = true;
                            return;
                        }
                    }
                }
            }
            session.credits -= 1;
            let nbytes = png.len() as u64;
            let msg = DownMsg::Frame(FrameMsg {
                step,
                cache_hit,
                name: img.name,
                png,
            });
            let sent = match &mut session.down {
                DownLink::Local(tx) => tx.send(msg).is_ok(),
                DownLink::Tcp(stream) => {
                    stream.set_write_timeout(Some(CREDIT_WAIT)).ok();
                    comm.external_wait(|| protocol::write_down(stream, &msg)).is_ok()
                }
            };
            if !sent {
                session.open = false;
                session.stats.detached = true;
                return;
            }
            session.stats.frames_sent += 1;
            session.stats.bytes_sent += nbytes;
            if cache_hit {
                session.stats.cache_hits += 1;
            }
            let telemetry = comm.telemetry();
            telemetry.counter("staging/frames_sent").inc();
            telemetry.counter("staging/bytes_sent").add(nbytes);
        }
    }

    /// Park one delivered packet's payload to its producer's BP file.
    fn park(&mut self, comm: &mut Comm, producer: usize, payload: &[u8]) -> insitu::Result<u64> {
        if !self.parkers.contains_key(&producer) {
            std::fs::create_dir_all(&self.park_dir)
                .map_err(|e| insitu::Error::Analysis(format!("park mkdir: {e}")))?;
            let writer = BpFileWriter::create(&self.park_dir, producer)
                .map_err(|e| insitu::Error::Analysis(format!("park create: {e}")))?;
            self.parkers.insert(producer, writer);
        }
        let writer = self.parkers.get_mut(&producer).expect("just inserted");
        writer
            .append(comm, payload)
            .map_err(|e| insitu::Error::Analysis(format!("park append: {e}")))?;
        Ok(1)
    }

    /// Drain the writer stream to completion, fanning every step out to
    /// the attached consumer sessions. Single-rank by construction: the
    /// service is one OS-level server, not a collective.
    ///
    /// # Errors
    /// Park/unmarshal failures; fatal transport errors.
    ///
    /// # Panics
    /// If `comm` has more than one rank.
    pub fn run(&mut self, comm: &mut Comm) -> insitu::Result<StagingReport> {
        assert_eq!(
            comm.size(),
            1,
            "StagingService::run is a single-rank server loop"
        );
        let mut steps = 0u64;
        let mut parked_appends = 0u64;
        loop {
            self.admit_joiners(comm)?;
            let recv = comm.span("transport/recv");
            let delivery = match self.reader.recv_step(comm) {
                Ok(Some(delivery)) => delivery,
                Ok(None) => break,
                Err(e) if !e.is_fatal() => {
                    drop(recv);
                    continue;
                }
                Err(e) => {
                    return Err(insitu::Error::Analysis(format!("staging transport: {e}")))
                }
            };
            drop(recv);
            steps += 1;
            if delivery.packets.is_empty() {
                continue;
            }
            // Park first — the catch-up source must contain every step the
            // live sessions saw — then rebuild and render.
            for packet in &delivery.packets {
                parked_appends += self.park(comm, packet.producer, &packet.payload)?;
            }
            self.parked_steps.push(delivery.step);
            let unmarshal = comm.span("transport/unmarshal");
            let mut mb = MultiBlock::new(self.n_sim_ranks);
            for packet in &delivery.packets {
                let data = bp::unmarshal_blocks(&packet.payload).map_err(|e| {
                    insitu::Error::Analysis(format!("unmarshal from {}: {e}", packet.producer))
                })?;
                comm.compute_host(
                    packet.payload.len() as f64,
                    packet.payload.len() as f64 * 2.0,
                );
                for (idx, grid) in data.blocks {
                    mb.blocks[idx as usize] = Some(grid);
                }
            }
            drop(unmarshal);
            let _render = comm.span("staging/fanout");
            for i in 0..self.sessions.len() {
                if !self.sessions[i].open {
                    continue;
                }
                let session = &mut self.sessions[i];
                let (images, hit) = session.pipeline.execute_cached(
                    comm,
                    &mb,
                    delivery.step,
                    &mut self.scratch,
                    &mut self.cache,
                );
                Self::deliver(comm, session, delivery.step, hit, images);
            }
        }
        // Stream over: admit any last-second joiners (they get a pure
        // catch-up replay), then close every session.
        self.admit_joiners(comm)?;
        for session in &mut self.sessions {
            if !session.open {
                continue;
            }
            let sent = match &mut session.down {
                DownLink::Local(tx) => tx.send(DownMsg::End).is_ok(),
                DownLink::Tcp(stream) => {
                    stream.set_write_timeout(Some(CREDIT_WAIT)).ok();
                    comm.external_wait(|| protocol::write_down(stream, &DownMsg::End))
                        .is_ok()
                }
            };
            if !sent {
                session.stats.detached = true;
            }
            session.open = false;
        }
        let telemetry = comm.telemetry();
        if telemetry.enabled() {
            telemetry.counter("staging/steps").add(steps);
            for session in &self.sessions {
                let scope = format!("staging/session{}", session.stats.id);
                telemetry
                    .counter(&format!("{scope}/frames_sent"))
                    .add(session.stats.frames_sent);
                telemetry
                    .counter(&format!("{scope}/bytes_sent"))
                    .add(session.stats.bytes_sent);
                telemetry
                    .counter(&format!("{scope}/cache_hits"))
                    .add(session.stats.cache_hits);
                telemetry
                    .counter(&format!("{scope}/catchup_steps"))
                    .add(session.stats.catchup_steps);
            }
            telemetry
                .counter("staging/cache_misses")
                .add(self.cache.misses());
        }
        // Follow sessions get an explicit `End` at their next tick.
        self.live_stop.store(true, Ordering::SeqCst);
        Ok(StagingReport {
            steps,
            parked_appends,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            short_reads: self.reader.short_reads(),
            bytes_received: self.reader.bytes_received(),
            sessions: self.sessions.iter().map(|s| s.stats.clone()).collect(),
            finish_time: comm.now(),
        })
    }
}

fn forward_credits(mut stream: TcpStream, tx: Sender<u32>) {
    loop {
        match protocol::read_credit(&mut stream) {
            Ok(Some(n)) => {
                if tx.send(n).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueuePolicy, StagingNetwork};
    use crate::link::StagingLink;
    use commsim::{run_ranks_with_state, MachineModel};
    use insitu::AnalysisAdaptor as _;
    use meshdata::{CellType, DataArray, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let z0 = rank as f64;
        let mut g = UnstructuredGrid::new();
        for z in [z0, z0 + 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 + 100.0 * rank as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    fn drive_writers(writers: Vec<crate::SstWriter>, steps: u64) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, writer| {
                let mut analysis =
                    crate::TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
                for step in 1..=steps {
                    let mut da = insitu::data_adaptor::StaticDataAdaptor::new(
                        "mesh",
                        block(comm.rank(), comm.size()),
                        step as f64 * 0.1,
                        step,
                    );
                    analysis.execute(comm, &mut da).unwrap();
                }
            });
        })
    }

    #[test]
    fn three_identical_sessions_share_one_render() {
        let dir = tempdir("staging_share");
        let (writers, mut readers) =
            StagingNetwork::build(2, 1, 16, StagingLink::test_tiny(), QueuePolicy::Block);
        let service = StagingService::new(readers.remove(0), 2, &dir, 16);
        let handle = service.handle();
        // Enough initial credits that sequential draining below never
        // stalls the service (credit-stall behavior is tested separately).
        let mut clients: Vec<ConsumerClient> = (0..3)
            .map(|_| handle.attach_local(SessionSpec::default(), 8))
            .collect();
        let sim = drive_writers(writers, 3);
        let svc = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), vec![service], |comm, mut s| {
                s.run(comm).unwrap()
            })
            .remove(0)
        });
        let mut collected = Vec::new();
        for client in &mut clients {
            collected.push(client.drain(Duration::from_secs(20)).unwrap());
        }
        sim.join().unwrap();
        let report = svc.join().unwrap();
        assert_eq!(report.steps, 3);
        for frames in &collected {
            assert_eq!(frames.len(), 3, "each session sees every step");
            assert!(frames.iter().all(|f| !f.png.is_empty()));
        }
        // 3 steps rendered once each; the other two sessions hit.
        assert_eq!(report.cache_misses, 3);
        assert_eq!(report.cache_hits, 6);
        assert!(report.cache_hit_rate() > 0.6);
        // Identical specs ⇒ byte-identical frames (only the hit flag may
        // differ — the first session renders, the others hit the cache).
        let pixels = |frames: &[FrameMsg]| {
            frames
                .iter()
                .map(|f| (f.step, f.name.clone(), f.png.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(pixels(&collected[0]), pixels(&collected[1]));
        assert_eq!(pixels(&collected[1]), pixels(&collected[2]));
        assert!(collected[1].iter().all(|f| f.cache_hit));
        assert!(collected[2].iter().all(|f| f.cache_hit));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn late_joiner_catches_up_from_parked_files() {
        let dir = tempdir("staging_late");
        let (writers, mut readers) =
            StagingNetwork::build(1, 1, 16, StagingLink::test_tiny(), QueuePolicy::Block);
        let service = StagingService::new(readers.remove(0), 1, &dir, 16);
        let handle = service.handle();
        let mut early = handle.attach_local(SessionSpec::default(), 8);
        let sim = drive_writers(writers, 4);
        let svc = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), vec![service], |comm, mut s| {
                s.run(comm).unwrap()
            })
            .remove(0)
        });
        // Wait until at least one live frame went out, then join late.
        let first = early.next_frame(Duration::from_secs(20)).unwrap().unwrap();
        assert_eq!(first.step, 1);
        let mut late = handle.attach_local(SessionSpec::default(), 8);
        let mut late_frames = vec![];
        while let Some(f) = late.next_frame(Duration::from_secs(20)).unwrap() {
            late_frames.push(f);
            late.grant(1).unwrap();
        }
        let mut early_frames = vec![first];
        early_frames.extend(early.drain(Duration::from_secs(20)).unwrap());
        sim.join().unwrap();
        let report = svc.join().unwrap();
        // Both sessions saw the full step sequence, the late one partly
        // via catch-up replay.
        let steps: Vec<u64> = late_frames.iter().map(|f| f.step).collect();
        assert_eq!(steps, vec![1, 2, 3, 4]);
        assert_eq!(early_frames.len(), 4);
        let late_stats = &report.sessions[1];
        assert!(late_stats.catchup_steps >= 1, "no catch-up happened");
        // Catch-up steps the early session already rendered are hits.
        assert!(report.cache_hits >= late_stats.catchup_steps);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follow_session_on_consumer_port_streams_and_detaches_unharmed() {
        let dir = tempdir("staging_follow");
        let (writers, mut readers) =
            StagingNetwork::build(1, 1, 16, StagingLink::test_tiny(), QueuePolicy::Block);
        let hub = telemetry::TelemetryHub::default();
        let mut service = StagingService::new(readers.remove(0), 1, &dir, 16);
        service.set_live_hub(hub.clone());
        let (listener, port) = crate::wire::loopback_listener().unwrap();
        service.listen_consumers(listener);
        let handle = service.handle();
        let mut frames_client = handle.attach_local(SessionSpec::default(), 8);

        // Attach a follow session over TCP before the stream starts.
        let mut follow = live::FollowClient::connect(&format!("127.0.0.1:{port}")).unwrap();
        let first = follow
            .next_snapshot(Duration::from_secs(10))
            .unwrap()
            .expect("initial snapshot");
        assert_eq!(first.seq, 0);
        let doc = telemetry::json::parse(&first.json).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(live::SNAPSHOT_SCHEMA)
        );

        let sim = drive_writers(writers, 3);
        let hub2 = hub.clone();
        let svc = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), vec![service], move |comm, mut s| {
                comm.enable_telemetry(&hub2, 0);
                s.run(comm).unwrap()
            })
            .remove(0)
        });

        // Watch until the staging counters show progress, then detach
        // mid-run by dropping the client.
        let mut saw_metrics = false;
        for _ in 0..100 {
            let Some(snap) = follow.next_snapshot(Duration::from_secs(10)).unwrap() else {
                break;
            };
            let doc = telemetry::json::parse(&snap.json).unwrap();
            // Service-side counters are rank-scoped on the hub.
            if doc
                .get("metrics")
                .unwrap()
                .get("rank0/staging/frames_sent")
                .is_some()
            {
                saw_metrics = true;
                break;
            }
        }
        drop(follow);

        let frames = frames_client.drain(Duration::from_secs(20)).unwrap();
        sim.join().unwrap();
        let report = svc.join().unwrap();
        assert!(saw_metrics, "live snapshots never showed staging counters");
        // The frame session is untouched by the follow attach/detach.
        assert_eq!(report.steps, 3);
        assert_eq!(frames.len(), 3);
        assert!(!report.sessions[0].detached);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nek_{}_{}_{}",
            tag,
            std::process::id(),
            std::thread::current().name().unwrap_or("t").replace("::", "_")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
