//! Consumer-session protocol for the staging service.
//!
//! A consumer opens a session by sending `Hello` (its render spec plus an
//! initial credit grant), then replenishes credits as it consumes frames;
//! the service answers with `Frame` messages (one per delivered step) and
//! a final `End`. Local sessions move these messages over in-process
//! channels; TCP sessions use length-prefixed frames:
//!
//! ```text
//! [u32 len][u8 tag][body…]        len counts everything after itself
//! ```
//!
//! Up (consumer → service): tag 0 `Hello`, tag 1 `Credit`.
//! Down (service → consumer): tag 10 `Frame`, tag 11 `End`,
//! tag 12 `Telemetry` (live snapshot JSON, follow sessions only).
//! All integers little-endian, like the BP marshaling.
//!
//! A `Hello` whose trailing follow byte is 1 opens a **follow session**:
//! the service sends no frames and ignores the spec/credits; instead a
//! real-time thread streams `Telemetry` messages (delta snapshots of the
//! run's metric hub) until either side disconnects. Follow sessions read
//! atomics only, so attaching and detaching never perturbs the
//! virtual-clock run being observed.

use std::io::{Read, Write};

/// What one consumer session wants rendered from every staged step.
///
/// Two sessions with equal specs produce identical pixels, so the second
/// is served from the staging service's frame cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// View direction for the framing camera.
    pub camera_dir: [f64; 3],
    /// Colormap name (see `render::Colormap::by_name`).
    pub colormap: String,
    /// Point array to color by.
    pub array: String,
}

impl Default for SessionSpec {
    fn default() -> Self {
        Self {
            width: 200,
            height: 150,
            camera_dir: [0.0, -1.0, 0.25],
            colormap: "cool-warm".into(),
            array: "pressure".into(),
        }
    }
}

/// One rendered frame delivered to a consumer session.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMsg {
    /// Simulation step the frame shows.
    pub step: u64,
    /// True when the frame came out of the staging cache (no re-raster).
    pub cache_hit: bool,
    /// `<pass>_<step>` image name.
    pub name: String,
    /// Encoded PNG bytes.
    pub png: Vec<u8>,
}

/// One live telemetry delta snapshot (follow sessions only).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryMsg {
    /// Snapshot sequence number, 0 for the initial full snapshot.
    pub seq: u64,
    /// Snapshot document (`nekstat/telemetry-snapshot/v1` JSON).
    pub json: String,
}

/// Service → consumer messages.
#[derive(Debug, Clone, PartialEq)]
pub enum DownMsg {
    /// One rendered step.
    Frame(FrameMsg),
    /// The stream is over; no more frames will arrive.
    End,
    /// One live telemetry snapshot (follow sessions only).
    Telemetry(TelemetryMsg),
}

const TAG_HELLO: u8 = 0;
const TAG_CREDIT: u8 = 1;
const TAG_FRAME: u8 = 10;
const TAG_END: u8 = 11;
const TAG_TELEMETRY: u8 = 12;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "staging protocol frame truncated",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> std::io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> std::io::Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 protocol string")
        })
    }

    fn bytes(&mut self) -> std::io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn write_tagged(w: &mut impl Write, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
    frame.push(tag);
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

fn read_tagged(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "zero-length protocol frame",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let tag = body.remove(0);
    Ok(Some((tag, body)))
}

/// Write the session-opening `Hello` (spec + initial credits). A true
/// `follow` opens a telemetry follow session instead of a frame stream.
///
/// # Errors
/// I/O failures.
pub fn write_hello(
    w: &mut impl Write,
    spec: &SessionSpec,
    credits: u32,
    follow: bool,
) -> std::io::Result<()> {
    let mut body = Vec::new();
    body.extend_from_slice(&(spec.width as u32).to_le_bytes());
    body.extend_from_slice(&(spec.height as u32).to_le_bytes());
    for d in spec.camera_dir {
        body.extend_from_slice(&d.to_le_bytes());
    }
    put_str(&mut body, &spec.colormap);
    put_str(&mut body, &spec.array);
    body.extend_from_slice(&credits.to_le_bytes());
    body.push(u8::from(follow));
    write_tagged(w, TAG_HELLO, &body)
}

/// Read a `Hello` off a fresh consumer connection; the final bool is the
/// follow flag.
///
/// # Errors
/// I/O failures, a non-Hello first frame, or a malformed body.
pub fn read_hello(r: &mut impl Read) -> std::io::Result<(SessionSpec, u32, bool)> {
    let Some((tag, body)) = read_tagged(r)? else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before Hello",
        ));
    };
    if tag != TAG_HELLO {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected Hello, got tag {tag}"),
        ));
    }
    let mut c = Cursor { buf: &body, pos: 0 };
    let width = c.u32()? as usize;
    let height = c.u32()? as usize;
    let camera_dir = [c.f64()?, c.f64()?, c.f64()?];
    let colormap = c.str()?;
    let array = c.str()?;
    let credits = c.u32()?;
    let follow = c.take(1)?[0] != 0;
    Ok((
        SessionSpec {
            width,
            height,
            camera_dir,
            colormap,
            array,
        },
        credits,
        follow,
    ))
}

/// Write a credit replenishment.
///
/// # Errors
/// I/O failures.
pub fn write_credit(w: &mut impl Write, n: u32) -> std::io::Result<()> {
    write_tagged(w, TAG_CREDIT, &n.to_le_bytes())
}

/// Read the next credit grant; `Ok(None)` when the consumer closed.
///
/// # Errors
/// I/O failures or a malformed/unexpected frame.
pub fn read_credit(r: &mut impl Read) -> std::io::Result<Option<u32>> {
    match read_tagged(r)? {
        None => Ok(None),
        Some((TAG_CREDIT, body)) => {
            let mut c = Cursor { buf: &body, pos: 0 };
            Ok(Some(c.u32()?))
        }
        Some((tag, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected Credit, got tag {tag}"),
        )),
    }
}

/// Write a down message (frame or end-of-stream).
///
/// # Errors
/// I/O failures.
pub fn write_down(w: &mut impl Write, msg: &DownMsg) -> std::io::Result<()> {
    match msg {
        DownMsg::Frame(f) => {
            let mut body = Vec::with_capacity(32 + f.name.len() + f.png.len());
            body.extend_from_slice(&f.step.to_le_bytes());
            body.push(u8::from(f.cache_hit));
            put_str(&mut body, &f.name);
            put_bytes(&mut body, &f.png);
            write_tagged(w, TAG_FRAME, &body)
        }
        DownMsg::End => write_tagged(w, TAG_END, &[]),
        DownMsg::Telemetry(t) => {
            let mut body = Vec::with_capacity(12 + t.json.len());
            body.extend_from_slice(&t.seq.to_le_bytes());
            put_str(&mut body, &t.json);
            write_tagged(w, TAG_TELEMETRY, &body)
        }
    }
}

/// Read the next down message; `Ok(None)` when the service closed the
/// socket without an explicit `End`.
///
/// # Errors
/// I/O failures or a malformed frame.
pub fn read_down(r: &mut impl Read) -> std::io::Result<Option<DownMsg>> {
    match read_tagged(r)? {
        None => Ok(None),
        Some((TAG_FRAME, body)) => {
            let mut c = Cursor { buf: &body, pos: 0 };
            let step = c.u64()?;
            let cache_hit = c.take(1)?[0] != 0;
            let name = c.str()?;
            let png = c.bytes()?;
            Ok(Some(DownMsg::Frame(FrameMsg {
                step,
                cache_hit,
                name,
                png,
            })))
        }
        Some((TAG_END, _)) => Ok(Some(DownMsg::End)),
        Some((TAG_TELEMETRY, body)) => {
            let mut c = Cursor { buf: &body, pos: 0 };
            let seq = c.u64()?;
            let json = c.str()?;
            Ok(Some(DownMsg::Telemetry(TelemetryMsg { seq, json })))
        }
        Some((tag, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected down tag {tag}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let spec = SessionSpec {
            width: 320,
            height: 240,
            camera_dir: [1.0, 0.5, -0.25],
            colormap: "viridis".into(),
            array: "velocity".into(),
        };
        let mut wire = Vec::new();
        write_hello(&mut wire, &spec, 7, false).unwrap();
        let (got, credits, follow) = read_hello(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(got, spec);
        assert_eq!(credits, 7);
        assert!(!follow);
    }

    #[test]
    fn follow_hello_roundtrip() {
        let mut wire = Vec::new();
        write_hello(&mut wire, &SessionSpec::default(), 0, true).unwrap();
        let (_, credits, follow) = read_hello(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(credits, 0);
        assert!(follow);
    }

    #[test]
    fn telemetry_down_roundtrip() {
        let msg = DownMsg::Telemetry(TelemetryMsg {
            seq: 42,
            json: "{\"schema\":\"nekstat/telemetry-snapshot/v1\"}".into(),
        });
        let mut wire = Vec::new();
        write_down(&mut wire, &msg).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_down(&mut cursor).unwrap(), Some(msg));
        assert_eq!(read_down(&mut cursor).unwrap(), None);
    }

    #[test]
    fn credit_and_down_roundtrip() {
        let mut wire = Vec::new();
        write_credit(&mut wire, 3).unwrap();
        assert_eq!(
            read_credit(&mut std::io::Cursor::new(&wire[..])).unwrap(),
            Some(3)
        );

        let frame = DownMsg::Frame(FrameMsg {
            step: 12,
            cache_hit: true,
            name: "pressure_000012".into(),
            png: vec![9; 100],
        });
        let mut wire = Vec::new();
        write_down(&mut wire, &frame).unwrap();
        write_down(&mut wire, &DownMsg::End).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_down(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_down(&mut cursor).unwrap(), Some(DownMsg::End));
        assert_eq!(read_down(&mut cursor).unwrap(), None);
    }

    #[test]
    fn truncated_hello_is_invalid_data() {
        let mut wire = Vec::new();
        write_hello(&mut wire, &SessionSpec::default(), 2, false).unwrap();
        wire.truncate(wire.len() - 3);
        assert!(read_hello(&mut std::io::Cursor::new(wire)).is_err());
    }
}
