//! `transport` — in-transit data staging, the reproduction's **ADIOS2 SST**.
//!
//! The paper's §4.2 workflow couples NekRS-SENSEI simulation nodes to
//! separate visualization endpoint nodes through ADIOS2's Sustainable
//! Staging Transport: UCX for the data plane, TCP for control, BP for data
//! marshaling, and a **4:1 ratio of simulation to endpoint nodes**. The
//! decisive property: simulation-node memory stays independent of the
//! endpoint count, and simulation-side overhead is just marshal + enqueue.
//!
//! This crate rebuilds that architecture:
//!
//! * [`bp`] — compact binary marshaling of rank-local mesh blocks + arrays
//!   (the BP analogue), with exact round-trip tests.
//! * [`link`] — the staging network model (latency/bandwidth for the data
//!   plane, per-message control latency — the UCX/TCP parameters).
//! * [`engine`] — [`engine::SstWriter`] / [`engine::SstReader`]: bounded
//!   staging queues between a simulation world and an endpoint world, with
//!   blocking or discarding overflow policies, timestamped for the virtual
//!   clock on both sides.
//! * [`endpoint`] — the SENSEI data consumer that the paper uses as the
//!   workflow endpoint: collects each step from its producers, rebuilds a
//!   multiblock, and drives a `ConfigurableAnalysis` (rendering or VTU
//!   checkpoint writing) on the endpoint ranks.
//! * [`file_engine`] — the BP *file* engine (ADIOS2's other mode): the
//!   same marshaled steps parked on disk for post-hoc analysis, i.e. the
//!   traditional workflow that in situ/in transit processing displaces.
//! * [`adaptor`] — [`adaptor::TransportAnalysis`], the simulation-side
//!   [`insitu::AnalysisAdaptor`] that marshals and sends (what the paper's
//!   "NekRS-SENSEI + ADIOS2" configuration enables).
//! * [`error`] — the no-panic failure taxonomy ([`error::TransportError`]):
//!   disconnects, open circuit breakers, lost steps, and back-pressure
//!   timeouts, classified fatal vs. transient so the workflow can degrade
//!   to the file engine instead of dying.
//! * [`wire`] — the pluggable wire layer beneath the engine: the in-process
//!   channel engine (bitwise-identical to the original transport) and a
//!   real loopback-TCP engine carrying the same CRC32/BP frames as
//!   length-prefixed packets, selected by `NEK_WIRE=channel|tcp`.
//! * [`staging`] — the multi-client staging service: one writer fanned out
//!   to N consumer sessions with per-session credit backpressure, rendered
//!   frames served through an LRU cache, late joiners caught up from the
//!   parked BP file engine.

pub mod adaptor;
pub mod bp;
pub mod endpoint;
pub mod engine;
pub mod error;
pub mod file_engine;
pub mod link;
pub mod staging;
pub mod wire;

pub use adaptor::{ProducerReport, ReportSink, TransportAnalysis};
pub use bp::{crc32, frame_crc_ok, marshal_blocks, unmarshal_blocks, StepData};
pub use endpoint::{EndpointConsumer, EndpointReport};
pub use engine::{
    PacketKind, QueuePolicy, SstReader, SstWriter, StagingNetwork, StepDelivery, WriteOutcome,
    WriterConfig,
};
pub use error::{TransportError, WriteError};
pub use file_engine::{BpFileReader, BpFileWriter};
pub use link::StagingLink;
pub use staging::{
    ConsumerClient, FollowClient, FrameMsg, LiveServer, SessionSpec, SessionStats, StagingHandle,
    StagingReport, StagingService, TelemetryMsg,
};
pub use wire::{WireKind, WireRecvError, WireRx, WireSendError, WireTx};
