//! BP file engine: step-append files for post-hoc analysis.
//!
//! ADIOS2 offers the same API over two engines — SST (streaming, the
//! paper's in-transit data plane) and BP files (write now, analyze later).
//! This module is the file half: a writer appends length-prefixed step
//! payloads to one `.bp4l` file per producer; the reader iterates the
//! steps back. It reuses the [`crate::bp`] marshaling, so anything staged
//! over SST can equally be parked on disk — the classic workflow the
//! paper's in situ approach is the alternative to.
//!
//! File layout: `[u64 magic][ (u64 len)(payload)… ]`.

use crate::bp::{self, StepData};
use commsim::Comm;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const FILE_MAGIC: u64 = 0x4250_464c_4531_0001; // "BPFLE1" + version

/// Appends marshaled steps to a per-producer file, charging filesystem
/// writes on the virtual clock.
pub struct BpFileWriter {
    path: PathBuf,
    file: std::fs::File,
    steps_written: u64,
    bytes_written: u64,
}

impl BpFileWriter {
    /// Create (truncate) the file for `producer` under `dir`.
    ///
    /// # Errors
    /// I/O failures creating the directory or file.
    pub fn create(dir: &Path, producer: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("producer_{producer:05}.bp4l"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&FILE_MAGIC.to_le_bytes())?;
        Ok(Self {
            path,
            file,
            steps_written: 0,
            bytes_written: 8,
        })
    }

    /// Append one marshaled step payload.
    ///
    /// # Errors
    /// I/O failures.
    pub fn append(&mut self, comm: &mut Comm, payload: &[u8]) -> std::io::Result<()> {
        self.file.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.file.write_all(payload)?;
        let nbytes = payload.len() as u64 + 8;
        comm.fs_write(nbytes, comm.size());
        self.steps_written += 1;
        self.bytes_written += nbytes;
        Ok(())
    }

    /// Steps appended so far.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Bytes on disk so far (including the header).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Iterates the steps of a `.bp4l` file.
pub struct BpFileReader {
    file: std::fs::File,
    steps_read: u64,
}

impl BpFileReader {
    /// Open and validate the file header.
    ///
    /// # Errors
    /// I/O failures or a bad magic number.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if u64::from_le_bytes(magic) != FILE_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a bp4l file",
            ));
        }
        Ok(Self {
            file,
            steps_read: 0,
        })
    }

    /// Read the next step; `Ok(None)` at end of file.
    ///
    /// # Errors
    /// I/O failures, truncation, or unmarshalable payloads.
    pub fn next_step(&mut self) -> std::io::Result<Option<StepData>> {
        let mut len_bytes = [0u8; 8];
        match self.file.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u64::from_le_bytes(len_bytes) as usize;
        let mut payload = vec![0u8; len];
        self.file.read_exact(&mut payload)?;
        let step = bp::unmarshal_blocks(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e}")))?;
        self.steps_read += 1;
        Ok(Some(step))
    }

    /// Steps consumed so far.
    pub fn steps_read(&self) -> u64 {
        self.steps_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bp::marshal_blocks;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(step: u64) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64("p", vec![step as f64; 8]))
            .unwrap();
        MultiBlock::local(0, 1, g)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bpfile_{tag}_{}", std::process::id()))
    }

    #[test]
    fn write_then_read_back_all_steps() {
        let dir = temp_dir("roundtrip");
        let dir2 = dir.clone();
        let written = run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut w = BpFileWriter::create(&dir2, 0).unwrap();
            for step in 1..=5u64 {
                let payload = marshal_blocks(0, step, step as f64 * 0.1, &block(step));
                w.append(comm, &payload).unwrap();
            }
            (
                w.steps_written(),
                w.bytes_written(),
                comm.stats().bytes_written_fs,
            )
        });
        let (steps, bytes, fs_bytes) = written[0];
        assert_eq!(steps, 5);
        assert_eq!(bytes - 8, fs_bytes, "header excluded from fs charge");

        let mut r = BpFileReader::open(&dir.join("producer_00000.bp4l")).unwrap();
        let mut seen = Vec::new();
        while let Some(step) = r.next_step().unwrap() {
            let p = step.blocks[0]
                .1
                .find_array("p", meshdata::Centering::Point)
                .unwrap();
            seen.push((step.step, p.get(0, 0)));
        }
        assert_eq!(r.steps_read(), 5);
        assert_eq!(seen, (1..=5u64).map(|s| (s, s as f64)).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_rejects_non_bp_files() {
        let dir = temp_dir("badmagic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bp4l");
        std::fs::write(&path, b"definitely not bp").unwrap();
        assert!(BpFileReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_step_is_an_error_not_a_panic() {
        let dir = temp_dir("trunc");
        let dir2 = dir.clone();
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut w = BpFileWriter::create(&dir2, 0).unwrap();
            let payload = marshal_blocks(0, 1, 0.1, &block(1));
            w.append(comm, &payload).unwrap();
        });
        let path = dir.join("producer_00000.bp4l");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut r = BpFileReader::open(&path).unwrap();
        assert!(r.next_step().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
