//! Error taxonomy for the staging path.
//!
//! Every failure mode the transport can experience is an enum variant, not
//! a `panic!`: callers decide whether to retry, skip a step, or degrade to
//! the BP file engine. Fatal errors (the endpoint is gone for good) are
//! distinguished from transient per-step losses so the workflow can keep
//! staging through a lossy link but fall back the moment the endpoint dies.

use crate::bp::BpError;

/// Why a staging operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The endpoint reader is gone (channel disconnected). Fatal.
    Disconnected,
    /// The per-writer circuit breaker is open: too many consecutive step
    /// failures. The endpoint is presumed dead. Fatal.
    CircuitOpen,
    /// One step exhausted its transmission attempts (drops/corruption);
    /// later steps may still get through. Transient.
    StepLost {
        /// The step that was given up on.
        step: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A blocking enqueue exceeded the real-time safety bound (wedged
    /// reader). Transient but counts toward the circuit breaker.
    Backpressure {
        /// The step whose enqueue timed out.
        step: u64,
    },
    /// A received frame failed validation.
    Corrupt(BpError),
    /// A wire connection ended mid-frame: `got` of `wanted` bytes arrived.
    /// Transient for the stream as a whole — the reader keeps draining its
    /// surviving connections — but the truncated frame is gone; counted
    /// under `transport/short_reads`.
    ShortRead {
        /// Bytes the frame section needed.
        wanted: usize,
        /// Bytes actually read before the stream ended.
        got: usize,
    },
}

impl TransportError {
    /// True when the endpoint must be presumed permanently gone and the
    /// caller should degrade (e.g. park steps to the file engine).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            TransportError::Disconnected | TransportError::CircuitOpen
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "endpoint reader disconnected"),
            TransportError::CircuitOpen => {
                write!(f, "circuit breaker open: endpoint presumed dead")
            }
            TransportError::StepLost { step, attempts } => {
                write!(f, "step {step} lost after {attempts} attempts")
            }
            TransportError::Backpressure { step } => {
                write!(
                    f,
                    "step {step}: blocking enqueue exceeded the real-time bound"
                )
            }
            TransportError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            TransportError::ShortRead { wanted, got } => {
                write!(f, "short read: connection ended after {got} of {wanted} bytes")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A failed [`crate::SstWriter::write`]: the error plus the payload handed
/// back so the caller can park it elsewhere (e.g. the BP file engine).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteError {
    /// What went wrong.
    pub error: TransportError,
    /// The marshaled step payload, returned for re-routing.
    pub payload: Vec<u8>,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for WriteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_classification() {
        assert!(TransportError::Disconnected.is_fatal());
        assert!(TransportError::CircuitOpen.is_fatal());
        assert!(!TransportError::StepLost {
            step: 3,
            attempts: 4
        }
        .is_fatal());
        assert!(!TransportError::Backpressure { step: 1 }.is_fatal());
        assert!(!TransportError::Corrupt(BpError::ChecksumMismatch).is_fatal());
        assert!(!TransportError::ShortRead {
            wanted: 128,
            got: 17
        }
        .is_fatal());
    }

    #[test]
    fn displays_are_informative() {
        let s = TransportError::StepLost {
            step: 9,
            attempts: 4,
        }
        .to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(TransportError::CircuitOpen.to_string().contains("breaker"));
    }
}
