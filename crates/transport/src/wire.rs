//! Pluggable wire engines for the staging data plane.
//!
//! The SST-analogue engine ([`crate::SstWriter`] / [`crate::SstReader`])
//! originally moved [`Packet`]s over in-process crossbeam channels only, so
//! the writer and reader could never leave one process. This module
//! factors the wire behind two small traits — [`WireTx`] on the producer
//! side, [`WireRx`] on the consumer side — with two engines:
//!
//! * **channel** ([`ChannelWireTx`] / [`ChannelWireRx`]): the original
//!   bounded crossbeam channel, delegated to verbatim. Runs with this
//!   engine are bitwise identical to the pre-refactor behavior (the
//!   scheduler-parity and golden-image suites pin that).
//! * **tcp** ([`TcpWireTx`] / [`TcpWireRx`]): the same CRC32/BP-marshaled
//!   frames as length-prefixed packets over a real socket, so the writer
//!   and reader can live in separate OS processes. The OS send buffer plus
//!   a bounded in-process forwarding queue play the staging-queue role;
//!   TCP flow control carries the back-pressure.
//!
//! The engine is selected by [`WireKind`] — `NEK_WIRE=channel|tcp` in the
//! environment, `--wire` on the harness binaries.
//!
//! # Frame layout (tcp)
//!
//! ```text
//! [u32 len][u8 kind][u32 producer][u64 step][f64 time][f64 t_avail][u64 ctx][f64 t_sent][payload…]
//! ```
//!
//! `len` counts everything after itself (little-endian throughout, like
//! the BP marshaling). A connection that ends *between* frames is a clean
//! detach; one that ends *inside* a frame surfaces as
//! [`WireRecvError::ShortRead`], which the reader reports as a typed
//! [`crate::TransportError::ShortRead`] and counts under
//! `transport/short_reads`.

use crate::engine::{Packet, PacketKind};
use crossbeam_channel::{Receiver, Sender};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Which wire engine carries the staging frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireKind {
    /// In-process bounded crossbeam channel (the original engine).
    #[default]
    Channel,
    /// Length-prefixed frames over a real loopback/TCP socket.
    Tcp,
}

impl WireKind {
    /// Parse `"channel"` / `"tcp"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("channel") {
            Some(WireKind::Channel)
        } else if s.eq_ignore_ascii_case("tcp") {
            Some(WireKind::Tcp)
        } else {
            None
        }
    }

    /// The engine selected by `NEK_WIRE` (default: channel).
    pub fn from_env() -> Self {
        std::env::var("NEK_WIRE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Display / manifest label.
    pub fn label(&self) -> &'static str {
        match self {
            WireKind::Channel => "channel",
            WireKind::Tcp => "tcp",
        }
    }
}

/// A failed wire send; the packet rides back so its payload can be parked.
#[derive(Debug)]
pub enum WireSendError {
    /// The queue is full right now (non-blocking wires only).
    Full(Packet),
    /// A bounded blocking send ran out the real-time safety bound.
    Timeout(Packet),
    /// The peer is gone (channel disconnected / socket dead).
    Closed(Packet),
}

/// A failed wire receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRecvError {
    /// Nothing arrived within the poll interval; try again.
    Timeout,
    /// Every producer connection is gone and the queue is drained.
    Closed,
    /// A connection died mid-frame: `got` of `wanted` bytes arrived.
    ShortRead {
        /// Bytes the frame section needed.
        wanted: usize,
        /// Bytes actually read before the stream ended.
        got: usize,
    },
}

/// Producer side of a wire: carries [`Packet`]s toward one reader.
pub trait WireTx: Send {
    /// Non-blocking send (channel engines); blocking wires may block up to
    /// their configured write timeout.
    fn try_send(&mut self, packet: Packet) -> Result<(), WireSendError>;

    /// Blocking send bounded by `timeout`.
    fn send_timeout(&mut self, packet: Packet, timeout: Duration) -> Result<(), WireSendError>;

    /// True when sends may block on a real resource (socket) and must be
    /// routed through `Comm::external_wait` so the event scheduler's other
    /// ranks keep running while this one is on the wire.
    fn blocking(&self) -> bool {
        false
    }
}

/// Consumer side of a wire: yields [`Packet`]s from all producers feeding
/// this reader.
pub trait WireRx: Send {
    /// Wait up to `timeout` for the next packet.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet, WireRecvError>;
}

// ---------------------------------------------------------------------------
// Channel engine (the original semantics, delegated verbatim)
// ---------------------------------------------------------------------------

/// Sender half of the in-process channel engine.
pub struct ChannelWireTx(pub(crate) Sender<Packet>);

impl WireTx for ChannelWireTx {
    fn try_send(&mut self, packet: Packet) -> Result<(), WireSendError> {
        use crossbeam_channel::TrySendError;
        self.0.try_send(packet).map_err(|e| match e {
            TrySendError::Full(p) => WireSendError::Full(p),
            TrySendError::Disconnected(p) => WireSendError::Closed(p),
        })
    }

    fn send_timeout(&mut self, packet: Packet, timeout: Duration) -> Result<(), WireSendError> {
        use crossbeam_channel::SendTimeoutError;
        self.0.send_timeout(packet, timeout).map_err(|e| match e {
            SendTimeoutError::Timeout(p) => WireSendError::Timeout(p),
            SendTimeoutError::Disconnected(p) => WireSendError::Closed(p),
        })
    }
}

/// Receiver half of the in-process channel engine.
pub struct ChannelWireRx(pub(crate) Receiver<Packet>);

impl WireRx for ChannelWireRx {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet, WireRecvError> {
        use crossbeam_channel::RecvTimeoutError;
        self.0.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => WireRecvError::Timeout,
            RecvTimeoutError::Disconnected => WireRecvError::Closed,
        })
    }
}

// ---------------------------------------------------------------------------
// Frame codec (tcp)
// ---------------------------------------------------------------------------

const HEADER_LEN: usize = 1 + 4 + 8 + 8 + 8 + 8 + 8;

fn kind_byte(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Data => 0,
        PacketKind::Skip => 1,
        PacketKind::Detach => 2,
    }
}

fn byte_kind(b: u8) -> Option<PacketKind> {
    match b {
        0 => Some(PacketKind::Data),
        1 => Some(PacketKind::Skip),
        2 => Some(PacketKind::Detach),
        _ => None,
    }
}

/// Serialize one packet into its wire frame (length prefix included).
pub fn encode_packet(packet: &Packet) -> Vec<u8> {
    let body_len = HEADER_LEN + packet.payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind_byte(packet.kind));
    out.extend_from_slice(&(packet.producer as u32).to_le_bytes());
    out.extend_from_slice(&packet.step.to_le_bytes());
    out.extend_from_slice(&packet.time.to_le_bytes());
    out.extend_from_slice(&packet.t_avail.to_le_bytes());
    out.extend_from_slice(&packet.ctx.to_le_bytes());
    out.extend_from_slice(&packet.t_sent.to_le_bytes());
    out.extend_from_slice(&packet.payload);
    out
}

/// Decode one frame *body* (everything after the length prefix).
pub fn decode_packet(body: &[u8]) -> Result<Packet, WireRecvError> {
    if body.len() < HEADER_LEN {
        return Err(WireRecvError::ShortRead {
            wanted: HEADER_LEN,
            got: body.len(),
        });
    }
    let kind = byte_kind(body[0]).ok_or(WireRecvError::ShortRead {
        wanted: HEADER_LEN,
        got: 0,
    })?;
    let producer = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
    let step = u64::from_le_bytes(body[5..13].try_into().expect("8 bytes"));
    let time = f64::from_le_bytes(body[13..21].try_into().expect("8 bytes"));
    let t_avail = f64::from_le_bytes(body[21..29].try_into().expect("8 bytes"));
    let ctx = u64::from_le_bytes(body[29..37].try_into().expect("8 bytes"));
    let t_sent = f64::from_le_bytes(body[37..45].try_into().expect("8 bytes"));
    Ok(Packet {
        kind,
        producer,
        step,
        time,
        t_avail,
        ctx,
        t_sent,
        payload: body[HEADER_LEN..].to_vec(),
    })
}

/// Fill `buf` from `r`, tolerating split writes. `Ok(n)` is the byte count
/// actually read: `buf.len()` on success, less when the stream ended
/// mid-section (the short-read case), 0 on a clean end-of-stream.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Read one frame off a byte stream. `Ok(None)` is a clean end-of-stream
/// at a frame boundary; an end *inside* a frame is a
/// [`WireRecvError::ShortRead`]. I/O errors (reset connections) are
/// reported as short reads too — the bytes are equally gone.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Packet>, WireRecvError> {
    let mut len_bytes = [0u8; 4];
    match read_full(r, &mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(4) => {}
        Ok(got) => return Err(WireRecvError::ShortRead { wanted: 4, got }),
        Err(_) => return Err(WireRecvError::ShortRead { wanted: 4, got: 0 }),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut body = vec![0u8; len];
    match read_full(r, &mut body) {
        Ok(got) if got == len => decode_packet(&body).map(Some),
        Ok(got) => Err(WireRecvError::ShortRead { wanted: len, got }),
        Err(_) => Err(WireRecvError::ShortRead { wanted: len, got: 0 }),
    }
}

// ---------------------------------------------------------------------------
// TCP engine
// ---------------------------------------------------------------------------

/// Producer half of the TCP engine: one connected socket per writer.
pub struct TcpWireTx {
    stream: TcpStream,
}

impl TcpWireTx {
    /// Connect to a reader's wire listener.
    ///
    /// # Errors
    /// Socket connect failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    fn write_frame(&mut self, packet: Packet, timeout: Duration) -> Result<(), WireSendError> {
        let frame = encode_packet(&packet);
        self.stream.set_write_timeout(Some(timeout)).ok();
        // Any write failure — timeout included — leaves the stream
        // possibly mid-frame, so the connection is unusable either way:
        // surface it as Closed and let the circuit breaker degrade.
        match self.stream.write_all(&frame) {
            Ok(()) => Ok(()),
            Err(_) => Err(WireSendError::Closed(packet)),
        }
    }
}

impl WireTx for TcpWireTx {
    fn try_send(&mut self, packet: Packet) -> Result<(), WireSendError> {
        self.write_frame(packet, Duration::from_secs(10))
    }

    fn send_timeout(&mut self, packet: Packet, timeout: Duration) -> Result<(), WireSendError> {
        self.write_frame(packet, timeout)
    }

    fn blocking(&self) -> bool {
        true
    }
}

/// Consumer half of the TCP engine.
///
/// An accept thread takes `n_producers` connections off the listener; each
/// connection gets a framing thread that decodes packets and forwards them
/// into one bounded queue (the staging bound — TCP flow control pushes the
/// back-pressure the rest of the way to the writer). A connection ending
/// mid-frame forwards a [`WireRecvError::ShortRead`] before closing.
pub struct TcpWireRx {
    rx: Receiver<Result<Packet, WireRecvError>>,
}

impl TcpWireRx {
    /// Spawn the accept/framing threads over `listener`.
    pub fn spawn(listener: TcpListener, n_producers: usize, capacity: usize) -> Self {
        let (tx, rx) = crossbeam_channel::bounded(capacity.max(1));
        std::thread::spawn(move || {
            let mut conns = Vec::new();
            for _ in 0..n_producers {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        let tx = tx.clone();
                        conns.push(std::thread::spawn(move || forward_frames(stream, tx)));
                    }
                    Err(_) => break,
                }
            }
            drop(tx); // reader sees Closed once every framing thread exits
            for c in conns {
                let _ = c.join();
            }
        });
        Self { rx }
    }
}

fn forward_frames(mut stream: TcpStream, tx: Sender<Result<Packet, WireRecvError>>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(packet)) => {
                if tx.send(Ok(packet)).is_err() {
                    return; // reader gone
                }
            }
            Ok(None) => return, // clean detach at a frame boundary
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl WireRx for TcpWireRx {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet, WireRecvError> {
        use crossbeam_channel::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(packet)) => Ok(packet),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Err(WireRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(WireRecvError::Closed),
        }
    }
}

/// Bind a loopback listener on an ephemeral port; returns it with the
/// chosen port.
///
/// # Errors
/// Socket bind failures.
pub fn loopback_listener() -> std::io::Result<(TcpListener, u16)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let port = listener.local_addr()?.port();
    Ok((listener, port))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PacketKind, payload: Vec<u8>) -> Packet {
        Packet {
            kind,
            producer: 3,
            step: 42,
            time: 0.125,
            t_avail: 7.5,
            ctx: 0x8000_0123_4567_89ab,
            t_sent: 0.0625,
            payload,
        }
    }

    #[test]
    fn codec_roundtrips_all_kinds() {
        for kind in [PacketKind::Data, PacketKind::Skip, PacketKind::Detach] {
            let p = sample(kind, vec![1, 2, 3, 4, 5]);
            let frame = encode_packet(&p);
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len, frame.len() - 4);
            let q = decode_packet(&frame[4..]).expect("decode");
            assert_eq!(q.kind, p.kind);
            assert_eq!(q.producer, p.producer);
            assert_eq!(q.step, p.step);
            assert_eq!(q.time.to_bits(), p.time.to_bits());
            assert_eq!(q.t_avail.to_bits(), p.t_avail.to_bits());
            assert_eq!(q.ctx, p.ctx);
            assert_eq!(q.t_sent.to_bits(), p.t_sent.to_bits());
            assert_eq!(q.payload, p.payload);
        }
    }

    #[test]
    fn truncated_body_is_a_short_read() {
        let frame = encode_packet(&sample(PacketKind::Data, vec![9; 16]));
        let err = decode_packet(&frame[4..HEADER_LEN]).unwrap_err();
        assert!(matches!(err, WireRecvError::ShortRead { .. }));
    }

    #[test]
    fn stream_reader_handles_coalesced_and_truncated_frames() {
        let a = encode_packet(&sample(PacketKind::Data, vec![1; 8]));
        let b = encode_packet(&sample(PacketKind::Skip, Vec::new()));
        // Two frames coalesced plus a truncated third.
        let c = encode_packet(&sample(PacketKind::Data, vec![2; 32]));
        let mut wire = Vec::new();
        wire.extend_from_slice(&a);
        wire.extend_from_slice(&b);
        wire.extend_from_slice(&c[..c.len() - 5]);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().payload, vec![1; 8]);
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap().kind,
            PacketKind::Skip
        );
        let err = read_frame(&mut cursor).unwrap_err();
        match err {
            WireRecvError::ShortRead { wanted, got } => {
                assert_eq!(wanted, c.len() - 4);
                assert_eq!(got, c.len() - 4 - 5);
            }
            other => panic!("expected short read, got {other:?}"),
        }
        // Clean EOF after the failure point.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn wire_kind_parsing() {
        assert_eq!(WireKind::parse("tcp"), Some(WireKind::Tcp));
        assert_eq!(WireKind::parse("Channel"), Some(WireKind::Channel));
        assert_eq!(WireKind::parse("carrier-pigeon"), None);
        assert_eq!(WireKind::default().label(), "channel");
        assert_eq!(WireKind::Tcp.label(), "tcp");
    }

    #[test]
    fn tcp_wire_moves_packets_between_threads() {
        let (listener, port) = loopback_listener().unwrap();
        let mut rx = TcpWireRx::spawn(listener, 1, 8);
        let mut tx = TcpWireTx::connect(&format!("127.0.0.1:{port}")).unwrap();
        for step in 0..5u64 {
            let mut p = sample(PacketKind::Data, vec![step as u8; 64]);
            p.step = step;
            tx.try_send(p).unwrap();
        }
        drop(tx);
        for step in 0..5u64 {
            let p = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(p.step, step);
            assert_eq!(p.payload, vec![step as u8; 64]);
        }
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap_err(),
            WireRecvError::Closed
        );
    }
}
