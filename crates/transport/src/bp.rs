//! BP-like binary marshaling of mesh blocks.
//!
//! A flat, little-endian, length-prefixed layout — the same role ADIOS2's
//! BP marshaling plays in the paper's SST configuration. One payload holds
//! one producer rank's blocks for one step.
//!
//! Every frame ends in a CRC32 (IEEE) of the body, so on-wire corruption
//! is detected and rejected at the receiver instead of being silently
//! decoded into garbage grids (see the fault model in DESIGN.md).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use meshdata::{ArrayData, CellType, DataArray, MultiBlock, UnstructuredGrid};

const MAGIC: u32 = 0x4250_344C; // "BP4L"
const VERSION: u32 = 2; // v2: trailing CRC32 frame check

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Verify a frame's trailing CRC32 without parsing the body. Cheap enough
/// to run on every received packet.
pub fn frame_crc_ok(payload: &[u8]) -> bool {
    if payload.len() < 4 {
        return false;
    }
    let (body, trailer) = payload.split_at(payload.len() - 4);
    crc32(body) == u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]])
}

/// One step's worth of data from one producer.
#[derive(Debug, Clone, PartialEq)]
pub struct StepData {
    /// Producer (simulation rank) id.
    pub producer: u32,
    /// Timestep index.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// The producer's local blocks: (global block index, grid).
    pub blocks: Vec<(u32, UnstructuredGrid)>,
}

/// Marshaling/unmarshaling errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BpError {
    /// Payload too short for the declared content.
    Truncated,
    /// Bad magic/version or malformed structure.
    Malformed(String),
    /// Trailing CRC32 does not match the frame body.
    ChecksumMismatch,
}

impl std::fmt::Display for BpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpError::Truncated => write!(f, "payload truncated"),
            BpError::Malformed(m) => write!(f, "malformed payload: {m}"),
            BpError::ChecksumMismatch => write!(f, "frame CRC32 mismatch"),
        }
    }
}

impl std::error::Error for BpError {}

/// Serialize the local blocks of `mb` for `producer` at (`step`, `time`).
pub fn marshal_blocks(producer: u32, step: u64, time: f64, mb: &MultiBlock) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u32_le(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(producer);
    out.put_u64_le(step);
    out.put_f64_le(time);
    let locals: Vec<_> = mb.local_blocks().collect();
    out.put_u32_le(locals.len() as u32);
    for (idx, g) in locals {
        out.put_u32_le(idx as u32);
        out.put_u64_le(g.n_points() as u64);
        out.put_u64_le(g.n_cells() as u64);
        for p in &g.points {
            out.put_f64_le(p[0]);
            out.put_f64_le(p[1]);
            out.put_f64_le(p[2]);
        }
        out.put_u64_le(g.connectivity.len() as u64);
        for &c in &g.connectivity {
            out.put_i64_le(c);
        }
        for &o in &g.offsets {
            out.put_i64_le(o);
        }
        for &t in &g.types {
            out.put_u8(t as u8);
        }
        put_arrays(&mut out, &g.point_data);
        put_arrays(&mut out, &g.cell_data);
    }
    let trailer = crc32(&out).to_le_bytes();
    out.put_slice(&trailer);
    out.to_vec()
}

fn put_arrays(out: &mut BytesMut, arrays: &[DataArray]) {
    out.put_u32_le(arrays.len() as u32);
    for a in arrays {
        out.put_u32_le(a.name.len() as u32);
        out.put_slice(a.name.as_bytes());
        out.put_u32_le(a.components as u32);
        let (tag, bytes): (u8, Vec<u8>) = match &a.data {
            ArrayData::F32(_) => (0, a.data.to_le_bytes()),
            // Shared snapshot storage marshals as plain Float64 so the
            // endpoint reconstructs an owned array.
            ArrayData::F64(_) | ArrayData::F64Shared(_) => (1, a.data.to_le_bytes()),
            ArrayData::I64(_) => (2, a.data.to_le_bytes()),
            ArrayData::U8(_) => (3, a.data.to_le_bytes()),
        };
        out.put_u8(tag);
        out.put_u64_le(a.data.scalar_len() as u64);
        out.put_slice(&bytes);
    }
}

/// Deserialize a payload produced by [`marshal_blocks`].
///
/// # Errors
/// CRC mismatch, truncation, or malformed structure.
pub fn unmarshal_blocks(payload: &[u8]) -> Result<StepData, BpError> {
    if payload.len() < 4 {
        return Err(BpError::Truncated);
    }
    if !frame_crc_ok(payload) {
        return Err(BpError::ChecksumMismatch);
    }
    let mut buf = Bytes::copy_from_slice(&payload[..payload.len() - 4]);
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(BpError::Malformed(format!("bad magic {magic:#x}")));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION {
        return Err(BpError::Malformed(format!("unsupported version {version}")));
    }
    let producer = get_u32(&mut buf)?;
    let step = get_u64(&mut buf)?;
    let time = get_f64(&mut buf)?;
    let n_blocks = get_u32(&mut buf)?;
    let mut blocks = Vec::with_capacity(n_blocks as usize);
    for _ in 0..n_blocks {
        let idx = get_u32(&mut buf)?;
        let n_points = get_u64(&mut buf)? as usize;
        let n_cells = get_u64(&mut buf)? as usize;
        let mut g = UnstructuredGrid::new();
        need(&buf, sized(n_points, 24, 0)?)?;
        for _ in 0..n_points {
            g.add_point([buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le()]);
        }
        let conn_len = get_u64(&mut buf)? as usize;
        need(&buf, sized(conn_len, 8, sized(n_cells, 9, 0)?)?)?;
        g.connectivity = (0..conn_len).map(|_| buf.get_i64_le()).collect();
        g.offsets = (0..n_cells).map(|_| buf.get_i64_le()).collect();
        g.types = (0..n_cells)
            .map(|_| {
                CellType::from_u8(buf.get_u8())
                    .ok_or_else(|| BpError::Malformed("unknown cell type".into()))
            })
            .collect::<Result<_, _>>()?;
        g.point_data = get_arrays(&mut buf)?;
        g.cell_data = get_arrays(&mut buf)?;
        g.validate()
            .map_err(|e| BpError::Malformed(format!("invalid grid: {e}")))?;
        blocks.push((idx, g));
    }
    Ok(StepData {
        producer,
        step,
        time,
        blocks,
    })
}

fn get_arrays(buf: &mut Bytes) -> Result<Vec<DataArray>, BpError> {
    let n = get_u32(buf)?;
    let mut arrays = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name_len = get_u32(buf)? as usize;
        need(buf, name_len)?;
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| BpError::Malformed("non-utf8 array name".into()))?;
        let components = get_u32(buf)? as usize;
        need(buf, 1)?;
        let tag = buf.get_u8();
        let scalar_len = get_u64(buf)? as usize;
        let data = match tag {
            0 => {
                need(buf, sized(scalar_len, 4, 0)?)?;
                ArrayData::F32((0..scalar_len).map(|_| buf.get_f32_le()).collect())
            }
            1 => {
                need(buf, sized(scalar_len, 8, 0)?)?;
                ArrayData::F64((0..scalar_len).map(|_| buf.get_f64_le()).collect())
            }
            2 => {
                need(buf, sized(scalar_len, 8, 0)?)?;
                ArrayData::I64((0..scalar_len).map(|_| buf.get_i64_le()).collect())
            }
            3 => {
                need(buf, scalar_len)?;
                ArrayData::U8(buf.copy_to_bytes(scalar_len).to_vec())
            }
            other => return Err(BpError::Malformed(format!("unknown type tag {other}"))),
        };
        if components == 0 || data.scalar_len() % components != 0 {
            return Err(BpError::Malformed(format!(
                "array '{name}': {} scalars not divisible by {components} components",
                data.scalar_len()
            )));
        }
        arrays.push(DataArray {
            name,
            components,
            data,
        });
    }
    Ok(arrays)
}

fn need(buf: &Bytes, n: usize) -> Result<(), BpError> {
    if buf.remaining() < n {
        Err(BpError::Truncated)
    } else {
        Ok(())
    }
}

/// Overflow-safe `a * b (+ c)` for size checks on untrusted counts: a
/// corrupted header can declare astronomically large element counts.
fn sized(a: usize, b: usize, c: usize) -> Result<usize, BpError> {
    a.checked_mul(b)
        .and_then(|ab| ab.checked_add(c))
        .ok_or(BpError::Truncated)
}

fn get_u32(buf: &mut Bytes) -> Result<u32, BpError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, BpError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, BpError> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mb(rank: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x + rank as f64, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 * 0.5).collect(),
        ))
        .unwrap();
        g.add_point_data(DataArray::vectors_f64(
            "velocity",
            (0..24).map(|i| i as f64).collect(),
        ))
        .unwrap();
        g.add_cell_data(DataArray::scalars_f32("rank", vec![rank as f32]))
            .unwrap();
        MultiBlock::local(rank, 4, g)
    }

    #[test]
    fn roundtrip_is_exact() {
        let mb = sample_mb(2);
        let payload = marshal_blocks(2, 77, 1.25, &mb);
        let back = unmarshal_blocks(&payload).unwrap();
        assert_eq!(back.producer, 2);
        assert_eq!(back.step, 77);
        assert_eq!(back.time, 1.25);
        assert_eq!(back.blocks.len(), 1);
        let (idx, g) = &back.blocks[0];
        assert_eq!(*idx, 2);
        let orig = mb.blocks[2].as_ref().unwrap();
        assert_eq!(g, orig);
    }

    #[test]
    fn empty_multiblock_roundtrips() {
        let mb = MultiBlock::new(4);
        let payload = marshal_blocks(0, 0, 0.0, &mb);
        let back = unmarshal_blocks(&payload).unwrap();
        assert!(back.blocks.is_empty());
    }

    #[test]
    fn truncated_payload_is_detected_at_every_cut() {
        let payload = marshal_blocks(1, 5, 0.5, &sample_mb(1));
        // Cutting anywhere must yield an error, never a panic.
        for cut in [0, 3, 10, 40, payload.len() / 2, payload.len() - 1] {
            assert!(
                unmarshal_blocks(&payload[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    /// Re-seal a deliberately edited frame so the structural checks (not
    /// the CRC) are what reject it.
    fn refresh_crc(payload: &mut [u8]) {
        let n = payload.len();
        let c = crc32(&payload[..n - 4]).to_le_bytes();
        payload[n - 4..].copy_from_slice(&c);
    }

    #[test]
    fn corrupt_magic_and_version_rejected() {
        let mut payload = marshal_blocks(1, 5, 0.5, &sample_mb(1));
        payload[0] ^= 0xFF;
        refresh_crc(&mut payload);
        assert!(matches!(
            unmarshal_blocks(&payload),
            Err(BpError::Malformed(_))
        ));
        let mut payload = marshal_blocks(1, 5, 0.5, &sample_mb(1));
        payload[4] = 99;
        refresh_crc(&mut payload);
        assert!(unmarshal_blocks(&payload).is_err());
    }

    #[test]
    fn bit_flips_anywhere_fail_the_crc() {
        let clean = marshal_blocks(1, 5, 0.5, &sample_mb(1));
        assert!(frame_crc_ok(&clean));
        for pos in [0, 4, 17, clean.len() / 2, clean.len() - 5, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x01;
            assert!(!frame_crc_ok(&bad), "flip at {pos} undetected");
            assert_eq!(
                unmarshal_blocks(&bad),
                Err(BpError::ChecksumMismatch),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_size_tracks_field_count() {
        let mb = sample_mb(0);
        let full = marshal_blocks(0, 0, 0.0, &mb).len();
        let mut slim_grid = mb.blocks[0].as_ref().unwrap().clone();
        slim_grid.point_data.clear();
        let slim = marshal_blocks(0, 0, 0.0, &MultiBlock::local(0, 4, slim_grid)).len();
        // pressure (8×8B) + velocity (24×8B) + headers ≈ 280 B difference.
        assert!(full > slim + 250, "full {full} vs slim {slim}");
    }
}
