//! The staging-link cost model.
//!
//! SST on JUWELS Booster is configured (per the paper) to move data over
//! **UCX** and run control operations over **TCP sockets on InfiniBand**.
//! The virtual-clock model needs three numbers for that: data-plane
//! latency, data-plane bandwidth, and the per-step control-plane
//! round-trip.

/// Cost parameters for one writer→reader staging connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagingLink {
    /// Data-plane message latency (s).
    pub latency: f64,
    /// Data-plane bandwidth (bytes/s) per connection.
    pub bandwidth: f64,
    /// Control-plane (TCP) round-trip per step announcement (s).
    pub control_latency: f64,
}

impl StagingLink {
    /// UCX over HDR-200 InfiniBand with TCP control — the paper's JUWELS
    /// Booster configuration.
    pub fn ucx_hdr200() -> Self {
        Self {
            latency: 3.0e-6,
            bandwidth: 20.0e9,
            control_latency: 60.0e-6, // TCP over IPoIB round trip
        }
    }

    /// Round numbers for unit tests.
    pub fn test_tiny() -> Self {
        Self {
            latency: 1.0e-6,
            bandwidth: 1.0e9,
            control_latency: 1.0e-5,
        }
    }

    /// Transfer time for one payload.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.control_latency + self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine_in_bytes() {
        let l = StagingLink::test_tiny();
        let t0 = l.transfer_time(0);
        let t1 = l.transfer_time(1_000_000_000);
        assert!((t0 - 1.1e-5).abs() < 1e-12);
        assert!((t1 - t0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hdr200_is_fast_but_not_free() {
        let l = StagingLink::ucx_hdr200();
        assert!(l.transfer_time(1) < 1e-3);
        assert!(l.transfer_time(20_000_000_000) > 0.9);
    }
}
