//! The SENSEI endpoint: the workflow's data consumer.
//!
//! "The endpoint of our workflow is always a SENSEI data consumer" (§4.2).
//! Each endpoint rank drains steps from its producers, rebuilds a
//! multiblock dataset, wraps it in a [`StaticDataAdaptor`], and drives a
//! `ConfigurableAnalysis` — so the *same* analysis configurations (Catalyst
//! rendering, VTU checkpoint writing, nothing) run in transit that would
//! otherwise run in situ.
//!
//! Fault behavior: a [partial step](crate::StepDelivery) — one or more
//! producers skipped or died — is still rendered from the blocks that
//! arrived; only a step with no data at all is counted and skipped. The
//! delivered-step log ([`EndpointReport::delivered_steps`]) is
//! deterministic for a given fault plan and seed, which the recovery tests
//! rely on.

use crate::bp;
use crate::engine::SstReader;
use commsim::Comm;
use insitu::configurable::AdaptorFactory;
use insitu::data_adaptor::StaticDataAdaptor;
use insitu::ConfigurableAnalysis;
use meshdata::MultiBlock;

/// Outcome of an endpoint rank's run.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointReport {
    /// Steps processed (complete + partial).
    pub steps_processed: u64,
    /// Steps with every producer present.
    pub complete_steps: u64,
    /// Steps rendered with at least one producer missing.
    pub partial_steps: u64,
    /// Frames rejected by the CRC check.
    pub corrupt_rejected: u64,
    /// Wire frames lost to mid-frame connection deaths (tcp wire).
    pub short_reads: u64,
    /// True when this endpoint's scheduled crash fault fired.
    pub crashed: bool,
    /// Payload bytes received (including rejected frames).
    pub bytes_received: u64,
    /// Virtual time when the endpoint finished.
    pub finish_time: f64,
    /// Every delivered step index, in order — the determinism witness.
    pub delivered_steps: Vec<u64>,
}

/// One endpoint rank's consumer loop.
pub struct EndpointConsumer {
    reader: SstReader,
    analyses: ConfigurableAnalysis,
    n_sim_ranks: usize,
}

impl EndpointConsumer {
    /// Configure the endpoint from SENSEI XML (same format as in situ).
    ///
    /// # Errors
    /// Configuration parse/instantiation failures.
    pub fn new(
        reader: SstReader,
        config_xml: &str,
        factories: &[AdaptorFactory],
        n_sim_ranks: usize,
    ) -> insitu::Result<Self> {
        let analyses = ConfigurableAnalysis::from_xml(config_xml, factories)?;
        Ok(Self {
            reader,
            analyses,
            n_sim_ranks,
        })
    }

    /// Attach a memory accountant for the staging queue.
    pub fn set_accountant(&mut self, a: memtrack::Accountant) {
        self.reader.set_accountant(a);
    }

    /// Drain the stream to completion, running the configured analyses on
    /// every step that carried data. Collective over the endpoint world's
    /// `comm`.
    ///
    /// # Errors
    /// First analysis failure.
    pub fn run(&mut self, comm: &mut Comm) -> insitu::Result<EndpointReport> {
        let mut delivered_steps = Vec::new();
        loop {
            let recv = comm.span("transport/recv");
            let delivery = match self.reader.recv_step(comm) {
                Ok(Some(delivery)) => delivery,
                Ok(None) => break,
                // A transient wire fault (e.g. a mid-frame short read): the
                // truncated frame is gone but surviving connections keep
                // feeding the reader, so keep draining.
                Err(e) if !e.is_fatal() => {
                    drop(recv);
                    continue;
                }
                Err(e) => return Err(insitu::Error::Analysis(format!("transport: {e}"))),
            };
            drop(recv);
            delivered_steps.push(delivery.step);
            if delivery.packets.is_empty() {
                // Every producer skipped or died: nothing to render.
                continue;
            }
            // Rebuild this endpoint rank's slice of the global multiblock
            // from the producers that did arrive.
            let unmarshal = comm.span("transport/unmarshal");
            let mut mb = MultiBlock::new(self.n_sim_ranks);
            for packet in &delivery.packets {
                let data = bp::unmarshal_blocks(&packet.payload).map_err(|e| {
                    insitu::Error::Analysis(format!("unmarshal from {}: {e}", packet.producer))
                })?;
                // Unmarshal cost: one sweep over the payload.
                comm.compute_host(
                    packet.payload.len() as f64,
                    packet.payload.len() as f64 * 2.0,
                );
                for (idx, grid) in data.blocks {
                    mb.blocks[idx as usize] = Some(grid);
                }
            }
            drop(unmarshal);
            let _exec = comm.span("insitu/execute");
            let mut da = StaticDataAdaptor::new("mesh", mb, delivery.time, delivery.step);
            self.analyses.execute(comm, delivery.step.max(1), &mut da)?;
        }
        self.analyses.finalize(comm)?;
        Ok(EndpointReport {
            steps_processed: delivered_steps.len() as u64,
            complete_steps: self.reader.complete_steps(),
            partial_steps: self.reader.partial_steps(),
            corrupt_rejected: self.reader.corrupt_rejected(),
            short_reads: self.reader.short_reads(),
            crashed: self.reader.crashed(),
            bytes_received: self.reader.bytes_received(),
            finish_time: comm.now(),
            delivered_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::TransportAnalysis;
    use crate::engine::{QueuePolicy, StagingNetwork};
    use crate::link::StagingLink;
    use commsim::{run_ranks_with_state, MachineModel};
    use insitu::AnalysisAdaptor as _;
    use meshdata::{CellType, DataArray, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let z0 = rank as f64;
        let mut g = UnstructuredGrid::new();
        for z in [z0, z0 + 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 + 100.0 * rank as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    /// Full in-transit round trip: 4 sim ranks stage 3 steps to 1 endpoint
    /// rank running a stats analysis; verify the endpoint saw the global
    /// data each step.
    #[test]
    fn four_to_one_end_to_end() {
        let (writers, readers) =
            StagingNetwork::build(4, 1, 16, StagingLink::test_tiny(), QueuePolicy::Block);

        // Simulation world: 4 ranks, each staging 3 steps.
        let sim = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, writer| {
                let mut analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
                for step in 1..=3u64 {
                    let mut da = insitu::data_adaptor::StaticDataAdaptor::new(
                        "mesh",
                        block(comm.rank(), comm.size()),
                        step as f64 * 0.1,
                        step,
                    );
                    analysis.execute(comm, &mut da).unwrap();
                }
                analysis.stats()
            })
        });

        // Endpoint world: 1 rank consuming.
        let endpoint = run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, reader| {
            let xml = r#"<sensei>
                <analysis type="stats" mesh="mesh" array="pressure"/>
            </sensei>"#;
            let mut consumer = EndpointConsumer::new(reader, xml, &[], 4).unwrap();
            consumer.run(comm).unwrap()
        });

        let sim_stats = sim.join().unwrap();
        for (written, dropped, _) in sim_stats {
            assert_eq!(written, 3);
            assert_eq!(dropped, 0);
        }
        let report = &endpoint[0];
        assert_eq!(report.steps_processed, 3);
        assert_eq!(report.complete_steps, 3);
        assert_eq!(report.partial_steps, 0);
        assert_eq!(report.delivered_steps, vec![1, 2, 3]);
        assert!(!report.crashed);
        assert!(report.bytes_received > 0);
        assert!(report.finish_time > 0.0);
    }

    #[test]
    fn unframed_payload_is_crc_rejected_not_fatal() {
        // A raw (non-CRC-framed) payload never reaches the analysis: the
        // engine rejects it at ingest and the consumer finishes cleanly.
        let (writers, readers) =
            StagingNetwork::build(1, 1, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            w.write(comm, 1, 0.0, vec![0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        });
        let res = run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, reader| {
            let mut consumer = EndpointConsumer::new(reader, "<sensei></sensei>", &[], 1).unwrap();
            consumer.run(comm).unwrap()
        });
        let report = &res[0];
        assert_eq!(report.corrupt_rejected, 1);
        assert_eq!(report.steps_processed, 0);
        assert!(report.bytes_received > 0, "rejected bytes still counted");
    }
}
