//! The SENSEI endpoint: the workflow's data consumer.
//!
//! "The endpoint of our workflow is always a SENSEI data consumer" (§4.2).
//! Each endpoint rank drains complete steps from its producers, rebuilds a
//! multiblock dataset, wraps it in a [`StaticDataAdaptor`], and drives a
//! `ConfigurableAnalysis` — so the *same* analysis configurations (Catalyst
//! rendering, VTU checkpoint writing, nothing) run in transit that would
//! otherwise run in situ.

use crate::bp;
use crate::engine::SstReader;
use commsim::Comm;
use insitu::configurable::AdaptorFactory;
use insitu::data_adaptor::StaticDataAdaptor;
use insitu::ConfigurableAnalysis;
use meshdata::MultiBlock;

/// Outcome of an endpoint rank's run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointReport {
    /// Complete steps processed.
    pub steps_processed: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Virtual time when the endpoint finished.
    pub finish_time: f64,
}

/// One endpoint rank's consumer loop.
pub struct EndpointConsumer {
    reader: SstReader,
    analyses: ConfigurableAnalysis,
    n_sim_ranks: usize,
}

impl EndpointConsumer {
    /// Configure the endpoint from SENSEI XML (same format as in situ).
    ///
    /// # Errors
    /// Configuration parse/instantiation failures.
    pub fn new(
        reader: SstReader,
        config_xml: &str,
        factories: &[AdaptorFactory],
        n_sim_ranks: usize,
    ) -> insitu::Result<Self> {
        let analyses = ConfigurableAnalysis::from_xml(config_xml, factories)?;
        Ok(Self {
            reader,
            analyses,
            n_sim_ranks,
        })
    }

    /// Attach a memory accountant for the staging queue.
    pub fn set_accountant(&mut self, a: memtrack::Accountant) {
        self.reader.set_accountant(a);
    }

    /// Drain the stream to completion, running the configured analyses on
    /// every complete step. Collective over the endpoint world's `comm`.
    ///
    /// # Errors
    /// First analysis failure.
    pub fn run(&mut self, comm: &mut Comm) -> insitu::Result<EndpointReport> {
        let mut steps = 0u64;
        while let Some((step, time, packets)) = self.reader.recv_step(comm) {
            // Rebuild this endpoint rank's slice of the global multiblock.
            let mut mb = MultiBlock::new(self.n_sim_ranks);
            for packet in &packets {
                let data = bp::unmarshal_blocks(&packet.payload).map_err(|e| {
                    insitu::Error::Analysis(format!("unmarshal from {}: {e}", packet.producer))
                })?;
                // Unmarshal cost: one sweep over the payload.
                comm.compute_host(packet.payload.len() as f64, packet.payload.len() as f64 * 2.0);
                for (idx, grid) in data.blocks {
                    mb.blocks[idx as usize] = Some(grid);
                }
            }
            let mut da = StaticDataAdaptor::new("mesh", mb, time, step);
            self.analyses.execute(comm, step.max(1), &mut da)?;
            steps += 1;
        }
        self.analyses.finalize(comm)?;
        Ok(EndpointReport {
            steps_processed: steps,
            bytes_received: self.reader.bytes_received(),
            finish_time: comm.now(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::TransportAnalysis;
    use crate::engine::{QueuePolicy, StagingNetwork};
    use crate::link::StagingLink;
    use commsim::{run_ranks_with_state, MachineModel};
    use insitu::AnalysisAdaptor as _;
    use meshdata::{CellType, DataArray, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let z0 = rank as f64;
        let mut g = UnstructuredGrid::new();
        for z in [z0, z0 + 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 + 100.0 * rank as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    /// Full in-transit round trip: 4 sim ranks stage 3 steps to 1 endpoint
    /// rank running a stats analysis; verify the endpoint saw the global
    /// data each step.
    #[test]
    fn four_to_one_end_to_end() {
        let (writers, readers) =
            StagingNetwork::build(4, 1, 16, StagingLink::test_tiny(), QueuePolicy::Block);

        // Simulation world: 4 ranks, each staging 3 steps.
        let sim = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, writer| {
                let mut analysis =
                    TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
                for step in 1..=3u64 {
                    let mut da = insitu::data_adaptor::StaticDataAdaptor::new(
                        "mesh",
                        block(comm.rank(), comm.size()),
                        step as f64 * 0.1,
                        step,
                    );
                    analysis.execute(comm, &mut da).unwrap();
                }
                analysis.stats()
            })
        });

        // Endpoint world: 1 rank consuming.
        let endpoint = run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, reader| {
            let xml = r#"<sensei>
                <analysis type="stats" mesh="mesh" array="pressure"/>
            </sensei>"#;
            let mut consumer = EndpointConsumer::new(reader, xml, &[], 4).unwrap();
            consumer.run(comm).unwrap()
        });

        let sim_stats = sim.join().unwrap();
        for (written, dropped, _) in sim_stats {
            assert_eq!(written, 3);
            assert_eq!(dropped, 0);
        }
        let report = endpoint[0];
        assert_eq!(report.steps_processed, 3);
        assert!(report.bytes_received > 0);
        assert!(report.finish_time > 0.0);
    }

    #[test]
    fn corrupt_payload_surfaces_as_error() {
        let (writers, readers) =
            StagingNetwork::build(1, 1, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            w.write(comm, 1, 0.0, vec![0xDE, 0xAD, 0xBE, 0xEF]);
        });
        let res = run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, reader| {
            let mut consumer =
                EndpointConsumer::new(reader, "<sensei></sensei>", &[], 1).unwrap();
            consumer.run(comm).is_err()
        });
        assert!(res[0], "corrupt payload must produce an error");
    }
}
