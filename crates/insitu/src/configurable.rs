//! XML-driven runtime analysis selection (paper Listing 1).
//!
//! ```xml
//! <sensei>
//!   <analysis type="catalyst" pipeline="pythonscript"
//!             filename="analysis.py" frequency="100" />
//!   <analysis type="histogram" mesh="mesh" array="pressure" bins="32"
//!             frequency="10" />
//! </sensei>
//! ```
//!
//! The key property the paper leans on: back ends are chosen **at runtime**
//! from the XML, without recompiling the simulation. Factories map an
//! `<analysis>` element to an [`AnalysisAdaptor`]; the built-in analyses
//! register themselves, and heavier back ends (rendering, checkpointing,
//! transport) register factories from their own crates.

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::Comm;
use meshdata::xml::{self, XmlNode};

/// Parsed attributes of one `<analysis>` element.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSpec {
    /// The `type` attribute.
    pub kind: String,
    /// Trigger period in timesteps (`frequency` attribute, default 1).
    pub frequency: u64,
    /// Whether the element is enabled (`enabled` attribute, default true).
    pub enabled: bool,
    /// All attributes, for factory-specific options.
    pub attrs: Vec<(String, String)>,
}

impl AnalysisSpec {
    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute with a default.
    pub fn attr_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.attr(name).unwrap_or(default)
    }

    /// Parse an attribute to a type with a default.
    pub fn attr_parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.attr(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

/// A factory turning an [`AnalysisSpec`] into a live adaptor. Returns
/// `Ok(None)` when the spec's type is not handled by this factory.
pub type AdaptorFactory =
    Box<dyn Fn(&AnalysisSpec) -> Result<Option<Box<dyn AnalysisAdaptor>>> + Send>;

struct Entry {
    spec: AnalysisSpec,
    adaptor: Box<dyn AnalysisAdaptor>,
    executions: u64,
}

/// The configured set of analyses, triggered by timestep.
pub struct ConfigurableAnalysis {
    entries: Vec<Entry>,
}

impl ConfigurableAnalysis {
    /// Parse the XML text and instantiate adaptors using `factories` (tried
    /// in order; the built-in factory from [`crate::analyses`] is appended
    /// automatically).
    ///
    /// # Errors
    /// Malformed XML, unknown analysis types, factory failures.
    pub fn from_xml(text: &str, factories: &[AdaptorFactory]) -> Result<Self> {
        let root = xml::parse(text).map_err(|e| Error::Config(format!("bad config XML: {e}")))?;
        if root.name != "sensei" {
            return Err(Error::Config(format!(
                "expected <sensei> root, found <{}>",
                root.name
            )));
        }
        let mut entries = Vec::new();
        for node in root.children_named("analysis") {
            let spec = parse_spec(node)?;
            if !spec.enabled {
                continue;
            }
            let adaptor = instantiate(&spec, factories)?;
            entries.push(Entry {
                spec,
                adaptor,
                executions: 0,
            });
        }
        Ok(Self { entries })
    }

    /// Number of enabled analyses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no analysis is enabled (the paper's "No Transport" /
    /// baseline SENSEI configuration).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Names and trigger frequencies of the enabled analyses.
    pub fn summaries(&self) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .map(|e| (e.spec.kind.clone(), e.spec.frequency))
            .collect()
    }

    /// Total executions per analysis so far.
    pub fn execution_counts(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.executions).collect()
    }

    /// Trigger every analysis whose frequency divides `step`. Returns
    /// `false` if any analysis requested a simulation stop.
    ///
    /// # Errors
    /// First analysis failure.
    pub fn execute(
        &mut self,
        comm: &mut Comm,
        step: u64,
        data: &mut dyn DataAdaptor,
    ) -> Result<bool> {
        let mut keep_going = true;
        for e in &mut self.entries {
            if step.is_multiple_of(e.spec.frequency) {
                e.executions += 1;
                keep_going &= e.adaptor.execute(comm, data)?;
            }
        }
        data.release_data();
        Ok(keep_going)
    }

    /// True when at least one analysis would run at `step` — the driver's
    /// publish gate: no trigger, no snapshot, no D2H traffic.
    pub fn triggers_at(&self, step: u64) -> bool {
        self.entries
            .iter()
            .any(|e| step.is_multiple_of(e.spec.frequency))
    }

    /// Deduplicated union of array names the analyses triggering at `step`
    /// will request, in first-seen order.
    pub fn arrays_at(&self, step: u64) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.entries {
            if step.is_multiple_of(e.spec.frequency) {
                for a in e.adaptor.required_arrays() {
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
            }
        }
        out
    }

    /// Finalize every adaptor.
    ///
    /// # Errors
    /// First finalize failure.
    pub fn finalize(&mut self, comm: &mut Comm) -> Result<()> {
        for e in &mut self.entries {
            e.adaptor.finalize(comm)?;
        }
        Ok(())
    }
}

fn parse_spec(node: &XmlNode) -> Result<AnalysisSpec> {
    let kind = node
        .attr("type")
        .ok_or_else(|| Error::Config("<analysis> missing 'type'".into()))?
        .to_string();
    let frequency = node
        .attr("frequency")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| Error::Config(format!("bad frequency '{s}'")))
        })
        .transpose()?
        .unwrap_or(1);
    if frequency == 0 {
        return Err(Error::Config("frequency must be >= 1".into()));
    }
    let enabled = node
        .attr("enabled")
        .map(|s| s != "0" && !s.eq_ignore_ascii_case("false"))
        .unwrap_or(true);
    Ok(AnalysisSpec {
        kind,
        frequency,
        enabled,
        attrs: node.attrs.clone(),
    })
}

fn instantiate(
    spec: &AnalysisSpec,
    factories: &[AdaptorFactory],
) -> Result<Box<dyn AnalysisAdaptor>> {
    for f in factories {
        if let Some(adaptor) = f(spec)? {
            return Ok(adaptor);
        }
    }
    if let Some(adaptor) = crate::analyses::builtin_factory(spec)? {
        return Ok(adaptor);
    }
    Err(Error::Config(format!(
        "no factory handles analysis type '{}'",
        spec.kind
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis_adaptor::NullAnalysis;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::MultiBlock;

    fn null_factory() -> AdaptorFactory {
        Box::new(|spec: &AnalysisSpec| {
            Ok((spec.kind == "null")
                .then(|| Box::new(NullAnalysis::new()) as Box<dyn AnalysisAdaptor>))
        })
    }

    #[test]
    fn parses_listing_1_shape() {
        let xml = r#"<sensei>
            <analysis type="null" frequency="100"/>
        </sensei>"#;
        let ca = ConfigurableAnalysis::from_xml(xml, &[null_factory()]).unwrap();
        assert_eq!(ca.len(), 1);
        assert_eq!(ca.summaries(), vec![("null".to_string(), 100)]);
    }

    #[test]
    fn frequency_gates_execution() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let xml = r#"<sensei><analysis type="null" frequency="10"/></sensei>"#;
            let mut ca = ConfigurableAnalysis::from_xml(xml, &[null_factory()]).unwrap();
            let mut da = StaticDataAdaptor::new("mesh", MultiBlock::new(1), 0.0, 0);
            for step in 1..=100u64 {
                ca.execute(comm, step, &mut da).unwrap();
            }
            assert_eq!(ca.execution_counts(), vec![10]);
        });
    }

    #[test]
    fn disabled_analyses_are_skipped() {
        let xml = r#"<sensei>
            <analysis type="null" enabled="0"/>
            <analysis type="null" enabled="false"/>
            <analysis type="null" enabled="true"/>
        </sensei>"#;
        let ca = ConfigurableAnalysis::from_xml(xml, &[null_factory()]).unwrap();
        assert_eq!(ca.len(), 1);
    }

    #[test]
    fn empty_config_is_the_no_transport_baseline() {
        let ca = ConfigurableAnalysis::from_xml("<sensei></sensei>", &[]).unwrap();
        assert!(ca.is_empty());
    }

    #[test]
    fn unknown_type_is_an_error() {
        let xml = r#"<sensei><analysis type="warp-drive"/></sensei>"#;
        let err = match ConfigurableAnalysis::from_xml(xml, &[null_factory()]) {
            Err(e) => e,
            Ok(_) => panic!("unknown type must fail"),
        };
        assert!(format!("{err}").contains("warp-drive"));
    }

    #[test]
    fn bad_xml_and_bad_frequency_are_errors() {
        assert!(ConfigurableAnalysis::from_xml("<oops>", &[]).is_err());
        assert!(ConfigurableAnalysis::from_xml("<wrong-root/>", &[]).is_err());
        let xml = r#"<sensei><analysis type="null" frequency="0"/></sensei>"#;
        assert!(ConfigurableAnalysis::from_xml(xml, &[null_factory()]).is_err());
        let xml = r#"<sensei><analysis type="null" frequency="ten"/></sensei>"#;
        assert!(ConfigurableAnalysis::from_xml(xml, &[null_factory()]).is_err());
    }

    #[test]
    fn spec_attr_helpers() {
        let xml = r#"<sensei><analysis type="null" bins="32"/></sensei>"#;
        let root = meshdata::xml::parse(xml).unwrap();
        let spec = parse_spec(root.child("analysis").unwrap()).unwrap();
        assert_eq!(spec.attr("bins"), Some("32"));
        assert_eq!(spec.attr_parse_or("bins", 8usize), 32);
        assert_eq!(spec.attr_parse_or("missing", 8usize), 8);
        assert_eq!(spec.attr_or("mesh", "default"), "default");
    }
}
