//! `insitu` — a generic in situ interface, the reproduction's **SENSEI**.
//!
//! SENSEI's value proposition (Ayachit et al. 2016, and §3 of the paper) is
//! a thin, stable contract between simulations and analysis back ends:
//!
//! * **[`DataAdaptor`]** — implemented by the *simulation*: exposes meshes
//!   aligned with the VTK data model ([`meshdata`]) plus metadata, on
//!   demand. Mirrors Listing 2 of the paper (`GetNumberOfMeshes`,
//!   `GetMeshMetadata`, `GetMesh`, `AddArray`).
//! * **[`AnalysisAdaptor`]** — implemented by *analysis back ends*
//!   (Catalyst-style rendering, checkpoint writers, in-transit senders,
//!   statistics): consumes a `DataAdaptor` when triggered.
//! * **[`ConfigurableAnalysis`]** — reads the runtime XML (Listing 1:
//!   `<sensei><analysis type="catalyst" ... frequency="100"/></sensei>`)
//!   and instantiates adaptors through pluggable factories, so back ends
//!   can be swapped *without recompiling the simulation*.
//! * **[`bridge`]** — the small embedding layer a simulation calls:
//!   `initialize` / `update(step, time)` / `finalize` (Listing 3).
//!
//! Built-in analyses live in [`analyses`]: descriptive statistics, a
//! global histogram, located extrema, a point probe, a VTU checkpoint
//! writer, and a watchdog (steering stop on blow-up) — all communicating
//! via `allreduce` like SENSEI's stock analyses, all selectable from the
//! runtime XML.

pub mod analyses;
pub mod analysis_adaptor;
pub mod bridge;
pub mod configurable;
pub mod data_adaptor;

pub use analysis_adaptor::AnalysisAdaptor;
pub use bridge::Bridge;
pub use configurable::{AdaptorFactory, AnalysisSpec, ConfigurableAnalysis};
pub use data_adaptor::DataAdaptor;

/// Errors surfaced by the in situ layer.
#[derive(Debug)]
pub enum Error {
    /// The simulation does not provide a requested mesh/array.
    NoSuchData(String),
    /// Configuration file problems.
    Config(String),
    /// An analysis back end failed.
    Analysis(String),
    /// Underlying data-model error.
    Data(meshdata::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoSuchData(m) => write!(f, "no such data: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Data(e) => write!(f, "data model error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<meshdata::Error> for Error {
    fn from(e: meshdata::Error) -> Self {
        Error::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
