//! The simulation-side adaptor contract (paper Listing 2).

use crate::Result;
use commsim::Comm;
use meshdata::{Centering, MeshMetadata, MultiBlock};

/// Implemented by a simulation to expose its state to analyses on demand.
///
/// The flow is pull-based, exactly as in SENSEI: an analysis first asks for
/// [`DataAdaptor::mesh_metadata`] (cheap — names, counts, bounds), then
/// requests the mesh geometry once, then attaches only the arrays it needs
/// with [`DataAdaptor::add_array`]. For a GPU-resident simulation each
/// `add_array` is where the device→host copy happens — the overhead the
/// paper's §3.2 calls out.
pub trait DataAdaptor {
    /// Number of meshes the simulation can provide.
    fn num_meshes(&self) -> usize;

    /// Name of mesh `idx` (`idx < num_meshes()`).
    fn mesh_name(&self, idx: usize) -> &str;

    /// Global metadata for a mesh (may communicate to aggregate counts).
    ///
    /// # Errors
    /// Unknown mesh name.
    fn mesh_metadata(&mut self, comm: &mut Comm, mesh: &str) -> Result<MeshMetadata>;

    /// Rank-local blocks of the mesh: geometry + topology, **without**
    /// attribute arrays (request those via [`DataAdaptor::add_array`]).
    ///
    /// # Errors
    /// Unknown mesh name.
    fn mesh(&mut self, comm: &mut Comm, mesh: &str) -> Result<MultiBlock>;

    /// Attach one named array to previously obtained blocks.
    ///
    /// # Errors
    /// Unknown mesh or array name.
    fn add_array(
        &mut self,
        comm: &mut Comm,
        mb: &mut MultiBlock,
        mesh: &str,
        centering: Centering,
        array: &str,
    ) -> Result<()>;

    /// Current simulation time.
    fn time(&self) -> f64;

    /// Current timestep index.
    fn time_step(&self) -> u64;

    /// Drop any cached state after an analysis round (SENSEI's
    /// `ReleaseData`). Default: nothing cached.
    fn release_data(&mut self) {}
}

/// A trivial in-memory adaptor over a prebuilt [`MultiBlock`] — used by
/// tests, by the in-transit **endpoint** (whose "simulation" is the data it
/// received over the wire), and as the reference implementation.
pub struct StaticDataAdaptor {
    mesh_name: String,
    blocks: MultiBlock,
    time: f64,
    time_step: u64,
}

impl StaticDataAdaptor {
    /// Wrap a multiblock (with arrays already attached) as an adaptor.
    pub fn new(
        mesh_name: impl Into<String>,
        blocks: MultiBlock,
        time: f64,
        time_step: u64,
    ) -> Self {
        Self {
            mesh_name: mesh_name.into(),
            blocks,
            time,
            time_step,
        }
    }
}

impl DataAdaptor for StaticDataAdaptor {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_name(&self, idx: usize) -> &str {
        assert_eq!(idx, 0, "static adaptor provides one mesh");
        &self.mesh_name
    }

    fn mesh_metadata(&mut self, comm: &mut Comm, mesh: &str) -> Result<MeshMetadata> {
        self.check(mesh)?;
        let mut md = MeshMetadata::from_local(&self.mesh_name, &self.blocks);
        // Aggregate counts/bounds globally, as SENSEI metadata is global.
        let mut counts = [md.global_points as f64, md.global_cells as f64];
        comm.allreduce_vec(&mut counts, commsim::ReduceOp::Sum);
        md.global_points = counts[0] as u64;
        md.global_cells = counts[1] as u64;
        md.time = self.time;
        md.time_step = self.time_step;
        Ok(md)
    }

    fn mesh(&mut self, _comm: &mut Comm, mesh: &str) -> Result<MultiBlock> {
        self.check(mesh)?;
        // Geometry only: strip arrays.
        let mut mb = self.blocks.clone();
        for b in mb.blocks.iter_mut().flatten() {
            b.point_data.clear();
            b.cell_data.clear();
        }
        Ok(mb)
    }

    fn add_array(
        &mut self,
        _comm: &mut Comm,
        mb: &mut MultiBlock,
        mesh: &str,
        centering: Centering,
        array: &str,
    ) -> Result<()> {
        self.check(mesh)?;
        for (i, dst) in mb.blocks.iter_mut().enumerate() {
            let (Some(dst), Some(src)) = (dst.as_mut(), self.blocks.blocks[i].as_ref()) else {
                continue;
            };
            let found = src
                .find_array(array, centering)
                .ok_or_else(|| crate::Error::NoSuchData(format!("array '{array}'")))?;
            match centering {
                Centering::Point => dst.add_point_data(found.clone())?,
                Centering::Cell => dst.add_cell_data(found.clone())?,
            }
        }
        Ok(())
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn time_step(&self) -> u64 {
        self.time_step
    }
}

impl StaticDataAdaptor {
    fn check(&self, mesh: &str) -> Result<()> {
        if mesh == self.mesh_name {
            Ok(())
        } else {
            Err(crate::Error::NoSuchData(format!("mesh '{mesh}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, UnstructuredGrid};

    fn sample_block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        let x0 = rank as f64;
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [x0, x0 + 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 + 10.0 * rank as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn metadata_aggregates_across_ranks() {
        let res = run_ranks(3, MachineModel::test_tiny(), |comm| {
            let mut da =
                StaticDataAdaptor::new("mesh", sample_block(comm.rank(), comm.size()), 1.5, 42);
            let md = da.mesh_metadata(comm, "mesh").unwrap();
            (md.global_points, md.global_cells, md.time, md.time_step)
        });
        for r in res {
            assert_eq!(r, (24, 3, 1.5, 42));
        }
    }

    #[test]
    fn mesh_is_geometry_only_until_add_array() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut da =
                StaticDataAdaptor::new("mesh", sample_block(comm.rank(), comm.size()), 0.0, 0);
            let mut mb = da.mesh(comm, "mesh").unwrap();
            let empty_before = mb
                .local_blocks()
                .all(|(_, g)| g.point_data.is_empty() && g.cell_data.is_empty());
            da.add_array(comm, &mut mb, "mesh", Centering::Point, "pressure")
                .unwrap();
            let has_after = mb
                .local_blocks()
                .all(|(_, g)| g.find_array("pressure", Centering::Point).is_some());
            (empty_before, has_after)
        });
        for r in res {
            assert_eq!(r, (true, true));
        }
    }

    #[test]
    fn unknown_mesh_and_array_error() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut da = StaticDataAdaptor::new("mesh", sample_block(0, 1), 0.0, 0);
            assert!(da.mesh(comm, "nope").is_err());
            let mut mb = da.mesh(comm, "mesh").unwrap();
            assert!(da
                .add_array(comm, &mut mb, "mesh", Centering::Point, "nope")
                .is_err());
            assert!(da
                .add_array(comm, &mut mb, "mesh", Centering::Cell, "pressure")
                .is_err());
        });
    }
}
