//! The analysis-side adaptor contract.

use crate::data_adaptor::DataAdaptor;
use crate::Result;
use commsim::Comm;

/// Implemented by analysis/visualization back ends (Catalyst-style
/// renderers, checkpoint writers, in-transit senders, statistics).
///
/// `execute` is collective: every rank of the simulation communicator calls
/// it at the same trigger with its own `DataAdaptor`, mirroring SENSEI's
/// MPI-collective `Execute(DataAdaptor*)`.
pub trait AnalysisAdaptor: Send {
    /// Human-readable adaptor name ("catalyst", "checkpoint", ...).
    fn name(&self) -> &str;

    /// Run the analysis against the current simulation state. Returns
    /// `Ok(true)` to let the simulation continue, `Ok(false)` to request a
    /// stop (SENSEI's convention for steering).
    ///
    /// # Errors
    /// Back-end failures (I/O, rendering, transport).
    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool>;

    /// Array names this analysis will request via
    /// [`crate::DataAdaptor::add_array`]. The driver uses the union across
    /// active analyses to publish each field exactly once per trigger.
    /// Defaults to empty (the analysis reads no field data).
    fn required_arrays(&self) -> Vec<String> {
        Vec::new()
    }

    /// Flush and release resources at end of run.
    ///
    /// # Errors
    /// Back-end failures during flush.
    fn finalize(&mut self, comm: &mut Comm) -> Result<()> {
        let _ = comm;
        Ok(())
    }
}

/// A counting no-op adaptor for tests and the paper's "No Transport"
/// reference configuration (SENSEI active, no back end enabled).
#[derive(Debug, Default)]
pub struct NullAnalysis {
    executions: u64,
    finalized: bool,
}

impl NullAnalysis {
    /// New counting adaptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `execute` ran.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Whether `finalize` ran.
    pub fn finalized(&self) -> bool {
        self.finalized
    }
}

impl AnalysisAdaptor for NullAnalysis {
    fn name(&self) -> &str {
        "null"
    }

    fn execute(&mut self, _comm: &mut Comm, _data: &mut dyn DataAdaptor) -> Result<bool> {
        self.executions += 1;
        Ok(true)
    }

    fn finalize(&mut self, _comm: &mut Comm) -> Result<()> {
        self.finalized = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::MultiBlock;

    #[test]
    fn null_analysis_counts() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut a = NullAnalysis::new();
            let mut da = StaticDataAdaptor::new("mesh", MultiBlock::new(1), 0.0, 0);
            assert!(a.execute(comm, &mut da).unwrap());
            assert!(a.execute(comm, &mut da).unwrap());
            a.finalize(comm).unwrap();
            assert_eq!(a.executions(), 2);
            assert!(a.finalized());
        });
    }
}
