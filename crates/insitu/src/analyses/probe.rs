//! Point-probe analysis: a time series of an array sampled at the grid
//! point nearest to a fixed location — the virtual equivalent of a hot-wire
//! or thermocouple in the flow.

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::{Comm, ReduceOp};
use meshdata::Centering;

/// One probe sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Timestep of the sample.
    pub time_step: u64,
    /// Simulation time.
    pub time: f64,
    /// Sampled value (scalar view).
    pub value: f64,
    /// Distance from the requested location to the sampled grid point.
    pub distance: f64,
}

/// The analysis adaptor: a probe time series.
pub struct ProbeAnalysis {
    mesh: String,
    array: String,
    location: [f64; 3],
    history: Vec<ProbeSample>,
    output: Option<std::path::PathBuf>,
}

impl ProbeAnalysis {
    /// Probe `array` at the grid point nearest `location`.
    pub fn new(mesh: impl Into<String>, array: impl Into<String>, location: [f64; 3]) -> Self {
        Self {
            mesh: mesh.into(),
            array: array.into(),
            location,
            history: Vec::new(),
            output: None,
        }
    }

    /// Write the probe time series as CSV at finalize time.
    pub fn set_output(&mut self, path: impl Into<std::path::PathBuf>) {
        self.output = Some(path.into());
    }

    /// Build from `<analysis type="probe" array=".." x=".." y=".." z=".."/>`.
    ///
    /// # Errors
    /// Missing `array` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let array = spec
            .attr("array")
            .ok_or_else(|| Error::Config("probe analysis needs 'array'".into()))?;
        let location = [
            spec.attr_parse_or("x", 0.0),
            spec.attr_parse_or("y", 0.0),
            spec.attr_parse_or("z", 0.0),
        ];
        let mut p = Self::new(spec.attr_or("mesh", "mesh"), array, location);
        p.output = spec.attr("output").map(std::path::PathBuf::from);
        Ok(p)
    }

    /// The time series so far.
    pub fn history(&self) -> &[ProbeSample] {
        &self.history
    }
}

impl AnalysisAdaptor for ProbeAnalysis {
    fn name(&self) -> &str {
        "probe"
    }

    fn required_arrays(&self) -> Vec<String> {
        vec![self.array.clone()]
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        data.add_array(comm, &mut mb, &self.mesh, Centering::Point, &self.array)?;
        // Nearest local point.
        let mut best_d2 = f64::INFINITY;
        let mut best_v = 0.0;
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, Centering::Point)
                .ok_or_else(|| Error::NoSuchData(self.array.clone()))?;
            for (i, p) in g.points.iter().enumerate() {
                let d2: f64 = (0..3).map(|d| (p[d] - self.location[d]).powi(2)).sum();
                if d2 < best_d2 {
                    best_d2 = d2;
                    best_v = a.tuple_magnitude(i);
                }
            }
        }
        // The globally nearest rank wins.
        let global_best = comm.allreduce(best_d2, ReduceOp::Min);
        let value = if best_d2 == global_best { best_v } else { 0.0 };
        // Exactly-one-winner guarantee: take the max value among ranks tied
        // at the winning distance (values agree on true geometric ties).
        let value = comm.allreduce(value, ReduceOp::Max);
        self.history.push(ProbeSample {
            time_step: data.time_step(),
            time: data.time(),
            value,
            distance: global_best.sqrt(),
        });
        Ok(true)
    }

    fn finalize(&mut self, comm: &mut Comm) -> Result<()> {
        let Some(path) = &self.output else {
            return Ok(());
        };
        if comm.rank() != 0 {
            return Ok(());
        }
        let mut csv = String::from("time_step,time,value,distance\n");
        for s in &self.history {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                s.time_step, s.time, s.value, s.distance
            ));
        }
        comm.fs_write(csv.len() as u64, 1);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(path, csv).map_err(|e| Error::Analysis(format!("write {path:?}: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..3 {
            g.add_point([rank as f64 * 3.0 + i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        g.add_point_data(DataArray::scalars_f64(
            "v",
            (0..3).map(|i| 100.0 * rank as f64 + i as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn probe_samples_the_nearest_point_across_ranks() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            // Points: rank 0 at x=0,1,2; rank 1 at x=3,4,5.
            let mut da = StaticDataAdaptor::new("mesh", block(comm.rank(), comm.size()), 1.0, 5);
            // Probe at x=4.2 → nearest is rank 1's x=4 (value 101).
            let mut p = ProbeAnalysis::new("mesh", "v", [4.2, 0.0, 0.0]);
            p.execute(comm, &mut da).unwrap();
            p.history()[0]
        });
        for s in res {
            assert_eq!(s.value, 101.0);
            assert!((s.distance - 0.2).abs() < 1e-12);
            assert_eq!(s.time_step, 5);
        }
    }

    #[test]
    fn probe_time_series_accumulates() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut p = ProbeAnalysis::new("mesh", "v", [0.0; 3]);
            for step in 0..3 {
                let mut da = StaticDataAdaptor::new("mesh", block(0, 1), step as f64, step);
                p.execute(comm, &mut da).unwrap();
            }
            p.history().len()
        });
        assert_eq!(res[0], 3);
    }

    #[test]
    fn from_spec_parses_location() {
        let spec = AnalysisSpec {
            kind: "probe".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![
                ("array".into(), "pressure".into()),
                ("x".into(), "0.5".into()),
                ("z".into(), "1.5".into()),
            ],
        };
        let p = ProbeAnalysis::from_spec(&spec).unwrap();
        assert_eq!(p.location, [0.5, 0.0, 1.5]);
        assert!(ProbeAnalysis::from_spec(&AnalysisSpec {
            kind: "probe".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![],
        })
        .is_err());
    }
}
