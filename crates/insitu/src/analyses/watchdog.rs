//! Watchdog steering analysis: request a simulation stop when a field
//! leaves its allowed range.
//!
//! Demonstrates the steering half of the SENSEI contract — `execute`
//! returning `false` asks the simulation to stop. Production codes use
//! this to kill diverging runs before they waste a full allocation, which
//! is exactly the in situ value proposition the paper's introduction
//! motivates (catching events between checkpoints).

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::{Comm, ReduceOp};
use meshdata::Centering;

/// Stops the run when `|array|`'s global max exceeds `max_abs` or any
/// value is non-finite.
pub struct WatchdogAnalysis {
    mesh: String,
    array: String,
    max_abs: f64,
    tripped_at: Option<u64>,
}

impl WatchdogAnalysis {
    /// Watch the point array `array` on `mesh` against `max_abs`.
    pub fn new(mesh: impl Into<String>, array: impl Into<String>, max_abs: f64) -> Self {
        Self {
            mesh: mesh.into(),
            array: array.into(),
            max_abs,
            tripped_at: None,
        }
    }

    /// Build from `<analysis type="watchdog" array=".." max=".."/>`.
    ///
    /// # Errors
    /// Missing `array` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let array = spec
            .attr("array")
            .ok_or_else(|| Error::Config("watchdog analysis needs 'array'".into()))?;
        Ok(Self::new(
            spec.attr_or("mesh", "mesh"),
            array,
            spec.attr_parse_or("max", f64::INFINITY),
        ))
    }

    /// The step at which the watchdog tripped, if it did.
    pub fn tripped_at(&self) -> Option<u64> {
        self.tripped_at
    }
}

impl AnalysisAdaptor for WatchdogAnalysis {
    fn name(&self) -> &str {
        "watchdog"
    }

    fn required_arrays(&self) -> Vec<String> {
        vec![self.array.clone()]
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        data.add_array(comm, &mut mb, &self.mesh, Centering::Point, &self.array)?;
        let mut worst = 0.0f64;
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, Centering::Point)
                .ok_or_else(|| Error::NoSuchData(self.array.clone()))?;
            for i in 0..a.data.scalar_len() {
                let v = a.data.get_as_f64(i);
                worst = if v.is_finite() {
                    worst.max(v.abs())
                } else {
                    f64::INFINITY
                };
            }
        }
        let global_worst = comm.allreduce(worst, ReduceOp::Max);
        if global_worst > self.max_abs {
            self.tripped_at.get_or_insert(data.time_step());
            return Ok(false);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(values: Vec<f64>, rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..values.len() {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        g.add_point_data(DataArray::scalars_f64("v", values))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn watchdog_passes_in_range_and_trips_out_of_range() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut w = WatchdogAnalysis::new("mesh", "v", 10.0);
            let mut ok_da = StaticDataAdaptor::new(
                "mesh",
                block(vec![1.0, -3.0], comm.rank(), comm.size()),
                0.0,
                1,
            );
            let ok = w.execute(comm, &mut ok_da).unwrap();
            // Only rank 1 carries the out-of-range value: steering must
            // still be collective-consistent across ranks.
            let bad_values = if comm.rank() == 1 {
                vec![1.0, -99.0]
            } else {
                vec![1.0, 2.0]
            };
            let mut bad_da =
                StaticDataAdaptor::new("mesh", block(bad_values, comm.rank(), comm.size()), 0.0, 2);
            let bad = w.execute(comm, &mut bad_da).unwrap();
            (ok, bad, w.tripped_at())
        });
        for (ok, bad, tripped) in res {
            assert!(ok);
            assert!(!bad, "out-of-range value must request a stop");
            assert_eq!(tripped, Some(2));
        }
    }

    #[test]
    fn watchdog_trips_on_nan() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut w = WatchdogAnalysis::new("mesh", "v", 1e10);
            let mut da = StaticDataAdaptor::new("mesh", block(vec![0.0, f64::NAN], 0, 1), 0.0, 3);
            w.execute(comm, &mut da).unwrap()
        });
        assert!(!res[0], "NaN must trip the watchdog");
    }
}
