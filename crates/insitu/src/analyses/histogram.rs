//! Global histogram analysis (SENSEI's canonical demo analysis): fixed bin
//! count over the global range, bins reduced across ranks.

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::{Comm, ReduceOp};
use meshdata::Centering;

/// One trigger's histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Timestep of the snapshot.
    pub time_step: u64,
    /// Global range the bins span.
    pub range: (f64, f64),
    /// Global bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The analysis adaptor: keeps the latest [`Histogram`] per trigger.
pub struct HistogramAnalysis {
    mesh: String,
    array: String,
    centering: Centering,
    bins: usize,
    history: Vec<Histogram>,
}

impl HistogramAnalysis {
    /// Histogram of point array `array` on `mesh` with `bins` bins.
    pub fn new(mesh: impl Into<String>, array: impl Into<String>, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        Self {
            mesh: mesh.into(),
            array: array.into(),
            centering: Centering::Point,
            bins,
            history: Vec::new(),
        }
    }

    /// Build from `<analysis type="histogram" array=".." bins=".."/>`.
    ///
    /// # Errors
    /// Missing `array` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let array = spec
            .attr("array")
            .ok_or_else(|| Error::Config("histogram analysis needs 'array'".into()))?;
        let bins = spec.attr_parse_or("bins", 16usize).max(1);
        let mut h = Self::new(spec.attr_or("mesh", "mesh"), array, bins);
        if spec.attr("centering") == Some("cell") {
            h.centering = Centering::Cell;
        }
        Ok(h)
    }

    /// All histograms so far.
    pub fn history(&self) -> &[Histogram] {
        &self.history
    }
}

impl AnalysisAdaptor for HistogramAnalysis {
    fn name(&self) -> &str {
        "histogram"
    }

    fn required_arrays(&self) -> Vec<String> {
        vec![self.array.clone()]
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        data.add_array(comm, &mut mb, &self.mesh, self.centering, &self.array)?;

        // Pass 1: global range.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, self.centering)
                .ok_or_else(|| Error::NoSuchData(self.array.clone()))?;
            for i in 0..a.data.scalar_len() {
                let v = a.data.get_as_f64(i);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let gmin = comm.allreduce(lo, ReduceOp::Min);
        let gmax = comm.allreduce(hi, ReduceOp::Max);
        let width = if gmax > gmin { gmax - gmin } else { 1.0 };

        // Pass 2: local bins, then a vector allreduce.
        let mut counts = vec![0.0f64; self.bins];
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, self.centering)
                .expect("checked in pass 1");
            for i in 0..a.data.scalar_len() {
                let v = a.data.get_as_f64(i);
                let bin = (((v - gmin) / width) * self.bins as f64) as usize;
                counts[bin.min(self.bins - 1)] += 1.0;
            }
        }
        comm.allreduce_vec(&mut counts, ReduceOp::Sum);
        self.history.push(Histogram {
            time_step: data.time_step(),
            range: (gmin, gmax),
            counts: counts.iter().map(|&c| c as u64).collect(),
        });
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize, values: Vec<f64>) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..values.len() {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        g.add_point_data(DataArray::scalars_f64("v", values))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn histogram_bins_globally() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            // Global values 0..8 over two ranks, 4 bins over [0, 7].
            let base = comm.rank() as f64 * 4.0;
            let values: Vec<f64> = (0..4).map(|i| base + i as f64).collect();
            let mut da =
                StaticDataAdaptor::new("mesh", block(comm.rank(), comm.size(), values), 0.0, 3);
            let mut h = HistogramAnalysis::new("mesh", "v", 4);
            h.execute(comm, &mut da).unwrap();
            h.history()[0].clone()
        });
        for hist in res {
            assert_eq!(hist.range, (0.0, 7.0));
            assert_eq!(hist.total(), 8);
            // Bins over [0,7]: [0,1.75) → {0,1}; [1.75,3.5) → {2,3};
            // [3.5,5.25) → {4,5}; rest → {6,7}.
            assert_eq!(hist.counts, vec![2, 2, 2, 2]);
            assert_eq!(hist.time_step, 3);
        }
    }

    #[test]
    fn constant_field_lands_in_one_bin() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut da = StaticDataAdaptor::new("mesh", block(0, 1, vec![5.0; 6]), 0.0, 0);
            let mut h = HistogramAnalysis::new("mesh", "v", 8);
            h.execute(comm, &mut da).unwrap();
            h.history()[0].clone()
        });
        assert_eq!(res[0].total(), 6);
        assert_eq!(res[0].counts.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn from_spec_defaults() {
        let spec = AnalysisSpec {
            kind: "histogram".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![("array".into(), "pressure".into())],
        };
        let h = HistogramAnalysis::from_spec(&spec).unwrap();
        assert_eq!(h.bins, 16);
        assert_eq!(h.array, "pressure");
        assert_eq!(h.mesh, "mesh");
    }
}
