//! Built-in analyses (SENSEI ships equivalents of these out of the box).

pub mod extrema;
pub mod histogram;
pub mod probe;
pub mod stats;
pub mod vtu_checkpoint;
pub mod watchdog;

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::Result;

pub use extrema::ExtremaAnalysis;
pub use histogram::HistogramAnalysis;
pub use probe::ProbeAnalysis;
pub use stats::StatsAnalysis;
pub use vtu_checkpoint::VtuCheckpointAnalysis;
pub use watchdog::WatchdogAnalysis;

/// Factory for the built-in analysis types (`extrema`, `histogram`,
/// `probe`, `stats`, `vtu-checkpoint`, `watchdog`). Returns `Ok(None)`
/// for types it does not recognize.
///
/// # Errors
/// Spec validation failures for recognized types.
pub fn builtin_factory(spec: &AnalysisSpec) -> Result<Option<Box<dyn AnalysisAdaptor>>> {
    Ok(match spec.kind.as_str() {
        "extrema" => Some(Box::new(ExtremaAnalysis::from_spec(spec)?)),
        "histogram" => Some(Box::new(HistogramAnalysis::from_spec(spec)?)),
        "probe" => Some(Box::new(ProbeAnalysis::from_spec(spec)?)),
        "stats" => Some(Box::new(StatsAnalysis::from_spec(spec)?)),
        "vtu-checkpoint" => Some(Box::new(VtuCheckpointAnalysis::from_spec(spec)?)),
        "watchdog" => Some(Box::new(WatchdogAnalysis::from_spec(spec)?)),
        _ => None,
    })
}
