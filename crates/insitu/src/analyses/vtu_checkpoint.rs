//! VTU checkpoint analysis: write the current state as `.vtu` pieces (one
//! per rank) plus a `.pvtu` index on rank 0.
//!
//! This is the paper's in-transit "Checkpointing" measurement point: "the
//! SENSEI endpoint is configured to write the pressure and velocity fields
//! to the storage system as VTU files". The same adaptor also serves as a
//! SENSEI-side checkpointer in situ.

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::Comm;
use meshdata::writer::{write_pvtu, write_vtu, Encoding};
use meshdata::Centering;

/// Writes requested arrays as VTU/PVTU each trigger.
pub struct VtuCheckpointAnalysis {
    mesh: String,
    arrays: Vec<String>,
    output_dir: Option<std::path::PathBuf>,
    prefix: String,
    weld: bool,
    files_written: u64,
    bytes_written: u64,
}

impl VtuCheckpointAnalysis {
    /// Checkpoint `arrays` from `mesh`; write real files under
    /// `output_dir` when given, otherwise only charge the cost model.
    pub fn new(
        mesh: impl Into<String>,
        arrays: Vec<String>,
        output_dir: Option<std::path::PathBuf>,
    ) -> Self {
        Self {
            mesh: mesh.into(),
            arrays,
            output_dir,
            prefix: "chk".to_string(),
            weld: false,
            files_written: 0,
            bytes_written: 0,
        }
    }

    /// Weld duplicated points before writing (smaller, conforming files;
    /// see [`meshdata::UnstructuredGrid::welded`]).
    pub fn set_weld(&mut self, weld: bool) {
        self.weld = weld;
    }

    /// Build from `<analysis type="vtu-checkpoint" arrays="pressure,velocity"
    /// output="dir"/>`.
    ///
    /// # Errors
    /// Missing `arrays` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let arrays: Vec<String> = spec
            .attr("arrays")
            .ok_or_else(|| Error::Config("vtu-checkpoint needs 'arrays'".into()))?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut chk = Self::new(
            spec.attr_or("mesh", "mesh"),
            arrays,
            spec.attr("output").map(std::path::PathBuf::from),
        );
        chk.weld = spec.attr("weld").is_some_and(|v| v == "1" || v == "true");
        Ok(chk)
    }

    /// Factory handling `type="vtu-checkpoint"`.
    pub fn factory() -> crate::configurable::AdaptorFactory {
        Box::new(|spec: &AnalysisSpec| {
            if spec.kind != "vtu-checkpoint" {
                return Ok(None);
            }
            Ok(Some(
                Box::new(VtuCheckpointAnalysis::from_spec(spec)?) as Box<dyn AnalysisAdaptor>
            ))
        })
    }

    /// Files written so far by this rank.
    pub fn files_written(&self) -> u64 {
        self.files_written
    }

    /// Bytes written so far by this rank (the storage-economy metric).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

impl AnalysisAdaptor for VtuCheckpointAnalysis {
    fn name(&self) -> &str {
        "vtu-checkpoint"
    }

    fn required_arrays(&self) -> Vec<String> {
        self.arrays.clone()
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        for a in &self.arrays {
            data.add_array(comm, &mut mb, &self.mesh, Centering::Point, a)?;
        }
        let step = data.time_step();
        let mut piece_names = Vec::new();
        for (block_idx, grid) in mb.local_blocks() {
            let name = format!("{}_{:06}_b{block_idx}.vtu", self.prefix, step);
            let mut buf = Vec::new();
            let welded;
            let grid = if self.weld {
                // Welding is a host-side hash pass over the points.
                comm.compute_host(grid.n_points() as f64 * 8.0, grid.heap_bytes() as f64);
                welded = grid.welded(1e-12);
                &welded
            } else {
                grid
            };
            let nbytes = write_vtu(grid, Encoding::Appended, &mut buf)?;
            // Serialization is host-side work; the write hits the shared FS
            // with every rank writing concurrently.
            comm.compute_host(nbytes as f64, nbytes as f64 * 2.0);
            comm.fs_write(nbytes, comm.size());
            self.files_written += 1;
            self.bytes_written += nbytes;
            if let Some(dir) = &self.output_dir {
                persist(dir, &name, &buf)?;
            }
            piece_names.push(name);
        }
        // Rank 0 writes the .pvtu index over all pieces.
        let all_pieces: Vec<Vec<String>> =
            comm.allgather(piece_names, 64 * mb.local_blocks().count().max(1) as u64);
        if comm.rank() == 0 {
            let md = data.mesh_metadata(comm, &self.mesh)?;
            let pieces: Vec<String> = all_pieces.into_iter().flatten().collect();
            let mut buf = Vec::new();
            let nbytes = write_pvtu(&md, &pieces, &mut buf)?;
            comm.fs_write(nbytes, 1);
            self.files_written += 1;
            self.bytes_written += nbytes;
            if let Some(dir) = &self.output_dir {
                persist(dir, &format!("{}_{:06}.pvtu", self.prefix, step), &buf)?;
            }
        } else {
            // Metadata aggregation is collective; keep ranks symmetric.
            let _ = data.mesh_metadata(comm, &self.mesh)?;
        }
        Ok(true)
    }
}

fn persist(dir: &std::path::Path, name: &str, buf: &[u8]) -> Result<()> {
    std::fs::create_dir_all(dir).map_err(|e| Error::Analysis(format!("mkdir {dir:?}: {e}")))?;
    std::fs::write(dir.join(name), buf)
        .map_err(|e| Error::Analysis(format!("write {name}: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x + rank as f64, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64("pressure", vec![0.5; 8]))
            .unwrap();
        g.add_point_data(DataArray::vectors_f64("velocity", vec![0.1; 24]))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn writes_pieces_and_index() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut chk = VtuCheckpointAnalysis::new(
                "mesh",
                vec!["pressure".into(), "velocity".into()],
                None,
            );
            let mut da = StaticDataAdaptor::new("mesh", block(comm.rank(), comm.size()), 0.0, 42);
            chk.execute(comm, &mut da).unwrap();
            (
                chk.files_written(),
                chk.bytes_written(),
                comm.stats().bytes_written_fs,
            )
        });
        // Rank 0: one piece + the pvtu; rank 1: one piece.
        assert_eq!(res[0].0, 2);
        assert_eq!(res[1].0, 1);
        assert!(res[0].1 > res[1].1, "rank 0 wrote the extra index");
        assert_eq!(res[0].1, res[0].2);
    }

    #[test]
    fn real_files_appear_and_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vtu_chk_test_{}", std::process::id()));
        let dir2 = dir.clone();
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut chk =
                VtuCheckpointAnalysis::new("mesh", vec!["pressure".into()], Some(dir2.clone()));
            let mut da = StaticDataAdaptor::new("mesh", block(0, 1), 0.0, 7);
            chk.execute(comm, &mut da).unwrap();
        });
        let piece = dir.join("chk_000007_b0.vtu");
        let bytes = std::fs::read(&piece).expect("piece exists");
        let grid = meshdata::reader::read_vtu(&bytes).unwrap();
        assert_eq!(grid.n_points(), 8);
        assert!(grid.find_array("pressure", Centering::Point).is_some());
        assert!(dir.join("chk_000007.pvtu").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn welded_checkpoints_are_smaller_on_duplicated_meshes() {
        // An element-major style block: two hexes with duplicated shared
        // face points.
        fn dup_block() -> MultiBlock {
            let mut g = UnstructuredGrid::new();
            for e in 0..2 {
                let x0 = e as f64;
                for z in [0.0, 1.0] {
                    for y in [0.0, 1.0] {
                        for x in [x0, x0 + 1.0] {
                            g.add_point([x, y, z]);
                        }
                    }
                }
                let b = (e * 8) as i64;
                g.add_cell(
                    CellType::Hexahedron,
                    &[b, b + 1, b + 3, b + 2, b + 4, b + 5, b + 7, b + 6],
                );
            }
            let n = g.n_points();
            g.add_point_data(DataArray::scalars_f64("pressure", vec![1.0; n]))
                .unwrap();
            MultiBlock::local(0, 1, g)
        }
        let sizes: Vec<u64> = [false, true]
            .iter()
            .map(|&weld| {
                run_ranks(1, MachineModel::test_tiny(), move |comm| {
                    let mut chk = VtuCheckpointAnalysis::new("mesh", vec!["pressure".into()], None);
                    chk.set_weld(weld);
                    let mut da = StaticDataAdaptor::new("mesh", dup_block(), 0.0, 0);
                    chk.execute(comm, &mut da).unwrap();
                    chk.bytes_written()
                })[0]
            })
            .collect();
        assert!(
            sizes[1] < sizes[0],
            "welded {} must beat raw {}",
            sizes[1],
            sizes[0]
        );
    }

    #[test]
    fn from_spec_parses_array_list() {
        let spec = AnalysisSpec {
            kind: "vtu-checkpoint".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![("arrays".into(), "pressure, velocity".into())],
        };
        let chk = VtuCheckpointAnalysis::from_spec(&spec).unwrap();
        assert_eq!(chk.arrays, vec!["pressure", "velocity"]);
        let bad = AnalysisSpec {
            kind: "vtu-checkpoint".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![],
        };
        assert!(VtuCheckpointAnalysis::from_spec(&bad).is_err());
    }
}
