//! Descriptive statistics analysis: global min/max/mean/std of one array,
//! computed with two `allreduce`s per trigger (count+sum+sumsq, min/max).

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::{Comm, ReduceOp};
use meshdata::Centering;

/// One trigger's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Timestep the snapshot belongs to.
    pub time_step: u64,
    /// Number of values globally (duplicated SEM nodes included — this is
    /// the analysis-side view of the data, as in SENSEI).
    pub count: u64,
    /// Global minimum.
    pub min: f64,
    /// Global maximum.
    pub max: f64,
    /// Global mean.
    pub mean: f64,
    /// Global standard deviation.
    pub std: f64,
}

/// The analysis adaptor: accumulates a history of [`FieldStats`].
pub struct StatsAnalysis {
    mesh: String,
    array: String,
    centering: Centering,
    history: Vec<FieldStats>,
    output: Option<std::path::PathBuf>,
}

impl StatsAnalysis {
    /// Analyze `array` (point-centered) on `mesh`.
    pub fn new(mesh: impl Into<String>, array: impl Into<String>) -> Self {
        Self {
            mesh: mesh.into(),
            array: array.into(),
            centering: Centering::Point,
            history: Vec::new(),
            output: None,
        }
    }

    /// Build from an `<analysis type="stats" mesh=".." array=".."/>` spec.
    ///
    /// # Errors
    /// Missing `array` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let array = spec
            .attr("array")
            .ok_or_else(|| Error::Config("stats analysis needs 'array'".into()))?;
        let mut s = Self::new(spec.attr_or("mesh", "mesh"), array);
        if spec.attr("centering") == Some("cell") {
            s.centering = Centering::Cell;
        }
        s.output = spec.attr("output").map(std::path::PathBuf::from);
        Ok(s)
    }

    /// Write the accumulated time series as CSV at finalize time.
    pub fn set_output(&mut self, path: impl Into<std::path::PathBuf>) {
        self.output = Some(path.into());
    }

    /// All snapshots so far.
    pub fn history(&self) -> &[FieldStats] {
        &self.history
    }
}

impl AnalysisAdaptor for StatsAnalysis {
    fn name(&self) -> &str {
        "stats"
    }

    fn required_arrays(&self) -> Vec<String> {
        vec![self.array.clone()]
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        data.add_array(comm, &mut mb, &self.mesh, self.centering, &self.array)?;
        let mut count = 0.0f64;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, self.centering)
                .ok_or_else(|| Error::NoSuchData(self.array.clone()))?;
            let n = a.data.scalar_len();
            for i in 0..n {
                let v = a.data.get_as_f64(i);
                count += 1.0;
                sum += v;
                sumsq += v * v;
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let mut moments = [count, sum, sumsq];
        comm.allreduce_vec(&mut moments, ReduceOp::Sum);
        let gmin = comm.allreduce(lo, ReduceOp::Min);
        let gmax = comm.allreduce(hi, ReduceOp::Max);
        let [count, sum, sumsq] = moments;
        let mean = if count > 0.0 { sum / count } else { 0.0 };
        let var = if count > 0.0 {
            (sumsq / count - mean * mean).max(0.0)
        } else {
            0.0
        };
        self.history.push(FieldStats {
            time_step: data.time_step(),
            count: count as u64,
            min: gmin,
            max: gmax,
            mean,
            std: var.sqrt(),
        });
        Ok(true)
    }

    fn finalize(&mut self, comm: &mut Comm) -> Result<()> {
        // Histories are identical on every rank (built from collectives);
        // rank 0 persists the CSV.
        let Some(path) = &self.output else {
            return Ok(());
        };
        if comm.rank() != 0 {
            return Ok(());
        }
        let mut csv = String::from("time_step,count,min,max,mean,std\n");
        for s in &self.history {
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                s.time_step, s.count, s.min, s.max, s.mean, s.std
            ));
        }
        comm.fs_write(csv.len() as u64, 1);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(path, csv).map_err(|e| Error::Analysis(format!("write {path:?}: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block_with_values(rank: usize, nranks: usize, values: Vec<f64>) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..values.len() {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        for i in 0..values.len() - 1 {
            g.add_cell(CellType::Line, &[i as i64, i as i64 + 1]);
        }
        g.add_point_data(DataArray::scalars_f64("v", values))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn stats_across_ranks() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            // Rank 0 holds [0,1,2,3], rank 1 holds [4,5,6,7].
            let base = comm.rank() as f64 * 4.0;
            let values: Vec<f64> = (0..4).map(|i| base + i as f64).collect();
            let mut da = StaticDataAdaptor::new(
                "mesh",
                block_with_values(comm.rank(), comm.size(), values),
                0.0,
                7,
            );
            let mut s = StatsAnalysis::new("mesh", "v");
            s.execute(comm, &mut da).unwrap();
            s.history()[0]
        });
        for st in res {
            assert_eq!(st.count, 8);
            assert_eq!(st.min, 0.0);
            assert_eq!(st.max, 7.0);
            assert!((st.mean - 3.5).abs() < 1e-12);
            assert!((st.std - (5.25f64).sqrt()).abs() < 1e-12);
            assert_eq!(st.time_step, 7);
        }
    }

    #[test]
    fn finalize_writes_the_time_series_csv_on_rank0() {
        let path = std::env::temp_dir().join(format!("stats_ts_{}.csv", std::process::id()));
        let p2 = path.clone();
        run_ranks(2, MachineModel::test_tiny(), move |comm| {
            let mut s = StatsAnalysis::new("mesh", "v");
            s.set_output(p2.clone());
            for step in 1..=3u64 {
                let mut da = StaticDataAdaptor::new(
                    "mesh",
                    block_with_values(comm.rank(), comm.size(), vec![step as f64; 4]),
                    0.0,
                    step,
                );
                s.execute(comm, &mut da).unwrap();
            }
            s.finalize(comm).unwrap();
            if comm.rank() == 0 {
                assert_eq!(comm.stats().files_written, 1);
            } else {
                assert_eq!(comm.stats().files_written, 0);
            }
        });
        let csv = std::fs::read_to_string(&path).expect("csv written");
        assert!(csv.starts_with("time_step,count,min,max,mean,std\n"));
        assert_eq!(csv.lines().count(), 4, "header + 3 samples");
        assert!(csv.contains("3,8,3,3,3,0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_spec_requires_array() {
        let spec = AnalysisSpec {
            kind: "stats".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![],
        };
        assert!(StatsAnalysis::from_spec(&spec).is_err());
    }
}
