//! Extrema-tracking analysis: the global minimum and maximum of an array
//! *and where they are*, per trigger — the lightweight monitoring analysis
//! scientists run to watch for hot spots or blow-ups without images.

use crate::analysis_adaptor::AnalysisAdaptor;
use crate::configurable::AnalysisSpec;
use crate::data_adaptor::DataAdaptor;
use crate::{Error, Result};
use commsim::Comm;
use meshdata::Centering;

/// One located extreme value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// The value.
    pub value: f64,
    /// Position of the point carrying it.
    pub position: [f64; 3],
    /// Rank that owns it.
    pub rank: usize,
}

/// One trigger's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremaRecord {
    /// Timestep of the snapshot.
    pub time_step: u64,
    /// Simulation time.
    pub time: f64,
    /// Global minimum and its location.
    pub min: Extremum,
    /// Global maximum and its location.
    pub max: Extremum,
}

/// The analysis adaptor: a history of located extrema.
pub struct ExtremaAnalysis {
    mesh: String,
    array: String,
    history: Vec<ExtremaRecord>,
}

impl ExtremaAnalysis {
    /// Track extrema of the point array `array` on `mesh`.
    pub fn new(mesh: impl Into<String>, array: impl Into<String>) -> Self {
        Self {
            mesh: mesh.into(),
            array: array.into(),
            history: Vec::new(),
        }
    }

    /// Build from `<analysis type="extrema" array=".."/>`.
    ///
    /// # Errors
    /// Missing `array` attribute.
    pub fn from_spec(spec: &AnalysisSpec) -> Result<Self> {
        let array = spec
            .attr("array")
            .ok_or_else(|| Error::Config("extrema analysis needs 'array'".into()))?;
        Ok(Self::new(spec.attr_or("mesh", "mesh"), array))
    }

    /// All records so far.
    pub fn history(&self) -> &[ExtremaRecord] {
        &self.history
    }
}

impl AnalysisAdaptor for ExtremaAnalysis {
    fn name(&self) -> &str {
        "extrema"
    }

    fn required_arrays(&self) -> Vec<String> {
        vec![self.array.clone()]
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        data.add_array(comm, &mut mb, &self.mesh, Centering::Point, &self.array)?;
        // Local candidates (scalar view: magnitude for vectors).
        let mut lo = Extremum {
            value: f64::INFINITY,
            position: [0.0; 3],
            rank: comm.rank(),
        };
        let mut hi = Extremum {
            value: f64::NEG_INFINITY,
            position: [0.0; 3],
            rank: comm.rank(),
        };
        for (_, g) in mb.local_blocks() {
            let a = g
                .find_array(&self.array, Centering::Point)
                .ok_or_else(|| Error::NoSuchData(self.array.clone()))?;
            for i in 0..a.len() {
                let v = a.tuple_magnitude(i);
                if v < lo.value {
                    lo.value = v;
                    lo.position = g.points[i];
                }
                if v > hi.value {
                    hi.value = v;
                    hi.position = g.points[i];
                }
            }
        }
        // Exchange candidates: 8 values per rank (2 × (value + xyz)).
        let candidates = comm.allgather((lo, hi), 64);
        let min = candidates
            .iter()
            .map(|(l, _)| *l)
            .min_by(|a, b| a.value.total_cmp(&b.value))
            .expect("at least one rank");
        let max = candidates
            .iter()
            .map(|(_, h)| *h)
            .max_by(|a, b| a.value.total_cmp(&b.value))
            .expect("at least one rank");
        self.history.push(ExtremaRecord {
            time_step: data.time_step(),
            time: data.time(),
            min,
            max,
        });
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..4 {
            g.add_point([i as f64 + 10.0 * rank as f64, 0.0, rank as f64]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        // Values peak on the last rank at its last point.
        g.add_point_data(DataArray::scalars_f64(
            "v",
            (0..4).map(|i| (rank * 4 + i) as f64).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn extrema_are_located_globally() {
        let res = run_ranks(3, MachineModel::test_tiny(), |comm| {
            let mut da = StaticDataAdaptor::new("mesh", block(comm.rank(), comm.size()), 2.5, 9);
            let mut e = ExtremaAnalysis::new("mesh", "v");
            e.execute(comm, &mut da).unwrap();
            e.history()[0]
        });
        for rec in res {
            assert_eq!(rec.time_step, 9);
            assert_eq!(rec.min.value, 0.0);
            assert_eq!(rec.min.rank, 0);
            assert_eq!(rec.min.position, [0.0, 0.0, 0.0]);
            assert_eq!(rec.max.value, 11.0);
            assert_eq!(rec.max.rank, 2);
            assert_eq!(rec.max.position, [23.0, 0.0, 2.0]);
        }
    }

    #[test]
    fn from_spec_requires_array() {
        let spec = AnalysisSpec {
            kind: "extrema".into(),
            frequency: 1,
            enabled: true,
            attrs: vec![],
        };
        assert!(ExtremaAnalysis::from_spec(&spec).is_err());
    }
}
