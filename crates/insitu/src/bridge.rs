//! The bridge: the few lines a simulation embeds (paper Listing 3).
//!
//! ```ignore
//! let mut bridge = Bridge::initialize(comm, &xml_text, factories)?;
//! loop {
//!     solver.step(comm);
//!     bridge.update(comm, step, time, &mut data_adaptor)?;
//! }
//! bridge.finalize(comm)?;
//! ```

use crate::configurable::{AdaptorFactory, ConfigurableAnalysis};
use crate::data_adaptor::DataAdaptor;
use crate::Result;
use commsim::Comm;

/// Owns the configured analyses and the trigger loop state.
pub struct Bridge {
    analyses: ConfigurableAnalysis,
    updates: u64,
    stopped: bool,
}

impl Bridge {
    /// Parse the runtime configuration and construct all enabled adaptors.
    ///
    /// # Errors
    /// Configuration parse/instantiation failures.
    pub fn initialize(
        _comm: &mut Comm,
        config_xml: &str,
        factories: &[AdaptorFactory],
    ) -> Result<Self> {
        let analyses = ConfigurableAnalysis::from_xml(config_xml, factories)?;
        Ok(Self {
            analyses,
            updates: 0,
            stopped: false,
        })
    }

    /// Hand the current state to whichever analyses trigger at `step`.
    /// Returns `false` once any analysis has requested a stop.
    ///
    /// # Errors
    /// First analysis failure.
    pub fn update(
        &mut self,
        comm: &mut Comm,
        step: u64,
        data: &mut dyn DataAdaptor,
    ) -> Result<bool> {
        self.updates += 1;
        if self.stopped {
            return Ok(false);
        }
        comm.telemetry().counter("insitu/updates").inc();
        let _sp = comm.span("insitu/execute");
        let keep_going = self.analyses.execute(comm, step, data)?;
        if !keep_going {
            self.stopped = true;
        }
        Ok(keep_going)
    }

    /// Finalize all adaptors.
    ///
    /// # Errors
    /// First finalize failure.
    pub fn finalize(&mut self, comm: &mut Comm) -> Result<()> {
        self.analyses.finalize(comm)
    }

    /// True when `update(step)` would actually run an analysis — false
    /// when nothing triggers at `step` or the bridge has been stopped.
    /// Drivers use this to skip publishing a snapshot entirely.
    pub fn triggers_at(&self, step: u64) -> bool {
        !self.stopped && self.analyses.triggers_at(step)
    }

    /// Array names the analyses triggering at `step` will request
    /// (deduplicated, first-seen order; empty once stopped).
    pub fn arrays_at(&self, step: u64) -> Vec<String> {
        if self.stopped {
            return Vec::new();
        }
        self.analyses.arrays_at(step)
    }

    /// The configured analyses (for inspection/metrics).
    pub fn analyses(&self) -> &ConfigurableAnalysis {
        &self.analyses
    }

    /// Total `update` calls.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis_adaptor::AnalysisAdaptor;
    use crate::configurable::AnalysisSpec;
    use crate::data_adaptor::StaticDataAdaptor;
    use commsim::{run_ranks, MachineModel};
    use meshdata::MultiBlock;

    /// Adaptor that requests a stop after `n` executions.
    struct StopAfter {
        remaining: u64,
    }

    impl AnalysisAdaptor for StopAfter {
        fn name(&self) -> &str {
            "stop-after"
        }

        fn execute(&mut self, _comm: &mut Comm, _data: &mut dyn DataAdaptor) -> Result<bool> {
            if self.remaining == 0 {
                return Ok(false);
            }
            self.remaining -= 1;
            Ok(true)
        }
    }

    #[test]
    fn bridge_drives_analyses_and_honors_stop() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let factory: AdaptorFactory = Box::new(|spec: &AnalysisSpec| {
                Ok((spec.kind == "stop-after").then(|| {
                    Box::new(StopAfter {
                        remaining: spec.attr_parse_or("n", 0),
                    }) as Box<dyn AnalysisAdaptor>
                }))
            });
            let xml = r#"<sensei><analysis type="stop-after" n="3"/></sensei>"#;
            let mut bridge = Bridge::initialize(comm, xml, &[factory]).unwrap();
            let mut da = StaticDataAdaptor::new("mesh", MultiBlock::new(1), 0.0, 0);
            let mut go_count = 0;
            for step in 1..=10u64 {
                if bridge.update(comm, step, &mut da).unwrap() {
                    go_count += 1;
                } else {
                    break;
                }
            }
            assert_eq!(go_count, 3, "three allowed steps, then stop");
            assert!(!bridge.update(comm, 11, &mut da).unwrap(), "stays stopped");
            bridge.finalize(comm).unwrap();
            assert_eq!(bridge.updates(), 5);
        });
    }
}
