//! Shared utilities for the figure-regeneration harnesses.
//!
//! Every harness binary accepts the same flags:
//!
//! * `--scale <N>` — divide the paper's rank counts by `N` (default: a
//!   scale that fits a laptop; see each binary). The mesh scales with the
//!   rank count so per-rank load matches the paper's regime.
//! * `--steps <N>` / `--trigger <N>` — override timestep/trigger counts.
//! * `--out <DIR>` — write real artifacts (images, checkpoints, CSV).
//! * `--full` — the paper's full rank counts (280/560/1120); hundreds of
//!   oversubscribed threads, only sensible on a large machine.
//!
//! Output convention: each binary prints the figure's series as an aligned
//! table (and a CSV when `--out` is given) so the paper's plot can be
//! regenerated directly from the rows.

use std::fmt::Write as _;

pub mod cases;

/// Parsed common CLI flags.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Rank-count divisor relative to the paper.
    pub scale: Option<usize>,
    /// Timestep override.
    pub steps: Option<usize>,
    /// Trigger-period override.
    pub trigger: Option<u64>,
    /// Artifact output directory.
    pub out: Option<std::path::PathBuf>,
    /// Run at the paper's full scale.
    pub full: bool,
    /// Directory for Chrome trace-event JSON files (one per run cell);
    /// also enables the per-phase breakdown printout.
    pub trace_out: Option<std::path::PathBuf>,
    /// Directory for RunReport JSON artifacts (one per run cell); also
    /// enables the telemetry bus on the instrumented runs.
    pub report_out: Option<std::path::PathBuf>,
    /// Run consumers pipelined (overlapped with stepping).
    pub pipelined: bool,
    /// Seed count for the chaos soak matrix.
    pub seeds: Option<u64>,
    /// File for a machine-readable JSON summary of the run.
    pub json_out: Option<std::path::PathBuf>,
    /// Resume from the newest valid checkpoint generation in this
    /// directory instead of starting from step 0.
    pub restart_from: Option<std::path::PathBuf>,
    /// Cut crash-consistent checkpoint generations under this directory
    /// (enables the run supervisor).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Checkpoint cadence in steps (default 2 when supervision is on).
    pub checkpoint_every: Option<u64>,
    /// Rank scheduler override (`--sched thread|event`); `None` follows
    /// `NEK_SCHED_MODE`.
    pub sched: Option<commsim::SchedMode>,
    /// Run the sweep at exactly this rank count instead of the scaled
    /// paper series (`--ranks N`).
    pub ranks: Option<usize>,
    /// Wire engine override (`--wire channel|tcp`); `None` follows
    /// `NEK_WIRE`.
    pub wire: Option<transport::WireKind>,
}

impl HarnessArgs {
    /// Parse from `std::env::args` (ignores unknown flags).
    pub fn parse() -> Self {
        let mut args = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()),
                "--steps" => args.steps = it.next().and_then(|v| v.parse().ok()),
                "--trigger" => args.trigger = it.next().and_then(|v| v.parse().ok()),
                "--out" => args.out = it.next().map(Into::into),
                "--full" => args.full = true,
                "--pipelined" => args.pipelined = true,
                "--trace-out" => args.trace_out = it.next().map(Into::into),
                "--report-out" => args.report_out = it.next().map(Into::into),
                "--seeds" => args.seeds = it.next().and_then(|v| v.parse().ok()),
                "--json-out" => args.json_out = it.next().map(Into::into),
                "--restart-from" => args.restart_from = it.next().map(Into::into),
                "--checkpoint-dir" => args.checkpoint_dir = it.next().map(Into::into),
                "--checkpoint-every" => {
                    args.checkpoint_every = it.next().and_then(|v| v.parse().ok())
                }
                "--sched" => {
                    args.sched = it.next().and_then(|v| {
                        if v.eq_ignore_ascii_case("event") {
                            Some(commsim::SchedMode::Event)
                        } else if v.eq_ignore_ascii_case("thread") {
                            Some(commsim::SchedMode::Thread)
                        } else {
                            eprintln!("warning: unknown --sched '{v}' (thread|event)");
                            None
                        }
                    })
                }
                "--ranks" => args.ranks = it.next().and_then(|v| v.parse().ok()),
                "--wire" => {
                    args.wire = it.next().and_then(|v| {
                        let parsed = transport::WireKind::parse(&v);
                        if parsed.is_none() {
                            eprintln!("warning: unknown --wire '{v}' (channel|tcp)");
                        }
                        parsed
                    })
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale N | --ranks N | --steps N | --trigger N | --out DIR | --trace-out DIR | --report-out DIR | --full | --pipelined | --sched thread|event | --wire channel|tcp | --seeds N | --json-out FILE | --restart-from DIR | --checkpoint-dir DIR | --checkpoint-every N"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("warning: ignoring unknown flag '{other}'"),
            }
        }
        args
    }

    /// Execution mode for the in situ runners: `--pipelined` wins,
    /// otherwise the `NEK_EXEC_MODE` default applies.
    pub fn exec_mode(&self) -> nek_sensei::ExecMode {
        if self.pipelined {
            nek_sensei::ExecMode::Pipelined
        } else {
            nek_sensei::ExecMode::default()
        }
    }

    /// Should the runs attach the telemetry bus? (`--report-out` implies
    /// yes; there is nowhere to put the artifact otherwise.)
    pub fn telemetry(&self) -> bool {
        self.report_out.is_some()
    }

    /// Rank-scheduler mode: `--sched` wins, otherwise the
    /// `NEK_SCHED_MODE` default applies.
    pub fn sched_mode(&self) -> commsim::SchedMode {
        self.sched.unwrap_or_default()
    }

    /// Wire engine: `--wire` wins, otherwise the `NEK_WIRE` default
    /// applies.
    pub fn wire_kind(&self) -> transport::WireKind {
        self.wire.unwrap_or_else(transport::WireKind::from_env)
    }
}

/// Run one in situ cell honoring the crash-recovery flags: resume from the
/// newest valid generation under `--restart-from`, and run under the
/// supervisor (cutting generations into `--checkpoint-dir/<cell>`) when
/// supervision is requested. Without either flag this is plain
/// [`nek_sensei::run_insitu`].
pub fn run_insitu_cell(
    args: &HarnessArgs,
    cell: &str,
    mut cfg: nek_sensei::InSituConfig,
) -> nek_sensei::InSituReport {
    if let Some(dir) = &args.restart_from {
        let scan = nek_sensei::scan_for_restore(dir, cfg.ranks);
        for q in &scan.quarantined {
            eprintln!(
                "warning: quarantined generation {} in {}: {}",
                q.step,
                dir.display(),
                q.reason
            );
        }
        for f in &scan.foreign {
            eprintln!(
                "note: skipping generation {} in {}: {}",
                f.step,
                dir.display(),
                f.reason
            );
        }
        match scan.restored {
            Some(generation) => {
                println!(
                    "  resuming from generation {} in {}",
                    generation.step,
                    dir.display()
                );
                cfg.recovery.resume_from = Some(std::sync::Arc::new(generation));
            }
            None => eprintln!(
                "warning: no restorable generation in {}; starting from step 0",
                dir.display()
            ),
        }
    }
    let Some(dir) = &args.checkpoint_dir else {
        return nek_sensei::run_insitu(&cfg);
    };
    // Each cell gets its own generation directory: sweeps mix rank counts,
    // and generations are only restorable into an equally sized world.
    let every = args.checkpoint_every.unwrap_or(2);
    let sup = nek_sensei::SupervisorConfig::new(dir.join(cell), every);
    let out = nek_sensei::run_supervised_insitu(&cfg, &sup);
    if out.recovery.restarts > 0 {
        println!(
            "  supervisor: {} restarts, {} steps lost, {} generations quarantined",
            out.recovery.restarts, out.recovery.lost_steps, out.recovery.quarantined
        );
    }
    out.report
}

/// Render an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{:-<w$}-", "", w = w);
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Write a CSV alongside the table when `--out` is set.
pub fn maybe_write_csv(args: &HarnessArgs, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let Some(dir) = &args.out else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut csv = headers.join(",");
    csv.push('\n');
    for row in rows {
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    if std::fs::write(&path, csv).is_ok() {
        println!("wrote {}", path.display());
    }
}

/// When `--trace-out DIR` is set, write one Chrome trace-event JSON per
/// run cell (`<name>.trace.json`, loadable in Perfetto) and print the
/// per-phase virtual-time breakdown.
pub fn maybe_write_trace(
    args: &HarnessArgs,
    name: &str,
    traces: &[commsim::RankTrace],
    phases: Option<&commsim::PhaseBreakdown>,
) {
    let Some(dir) = &args.trace_out else {
        return;
    };
    if traces.is_empty() {
        return;
    }
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.trace.json"));
    if std::fs::write(&path, commsim::chrome_trace_json(traces)).is_ok() {
        println!("wrote {}", path.display());
    }
    if let Some(p) = phases {
        println!(
            "  phase breakdown ({} ranks, {:.1}% of wall attributed):",
            p.ranks.len(),
            p.attributed_fraction() * 100.0
        );
        print!("{}", p.to_table());
    }
}

/// When `--report-out DIR` is set, write one RunReport JSON per run cell
/// (`<name>.report.json`, readable by `nekstat`) and print a one-line
/// digest.
pub fn maybe_write_report(args: &HarnessArgs, name: &str, report: Option<&telemetry::RunReport>) {
    let Some(dir) = &args.report_out else {
        return;
    };
    let Some(report) = report else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.report.json"));
    if std::fs::write(&path, report.to_json()).is_ok() {
        println!(
            "wrote {} ({} samples, {} events, p95 step {})",
            path.display(),
            report.series.len(),
            report.events.len(),
            fmt_secs(report.step_time_p95()),
        );
    }
}

/// Format seconds for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["ranks", "time"],
            &[
                vec!["280".into(), "12.5 s".into()],
                vec!["1120".into(), "4.2 s".into()],
            ],
        );
        assert!(t.contains("| ranks | time"));
        assert!(t.contains("| 1120  | 4.2 s"));
        // Every line has equal width.
        let widths: Vec<usize> = t.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0021), "2.10 ms");
        assert_eq!(fmt_secs(3.4e-5), "34.0 µs");
    }
}
