//! Shared case setup for the figure harnesses.
//!
//! Every harness used to carry its own copy of the paper-regime sizing
//! arithmetic (mesh dimensions, throughput derating, run configuration
//! literals). It lives here once, so fig2/fig3 provably run *the same
//! runs* (ditto fig5/fig6) and a sizing fix lands everywhere at once.

use crate::HarnessArgs;
use commsim::{Comm, FaultPlan, MachineModel};
use insitu::AnalysisAdaptor;
use nek_sensei::{InSituConfig, InSituMode, InTransitConfig, SnapshotPlane};
use render::pipeline::{Compositing, FilterKind, RenderPass, RenderPipeline};
use render::{CatalystAnalysis, Colormap};
use sem::cases::{pb146, rbc, CaseParams, CaseSetup};
use sem::navier_stokes::FlowSolver;
use transport::{QueuePolicy, StagingLink, WriterConfig};

/// The §4.1 strong-scaling sweep shared by fig2 and fig3: one global
/// pb146 mesh sized for the largest rank count, run at each scaled rank
/// count under a Polaris model derated to the paper's per-rank load.
pub struct Pb146Sweep {
    /// The paper's rank counts (280/560/1120).
    pub paper_ranks: Vec<usize>,
    /// Scaled-down rank counts actually run.
    pub ranks: Vec<usize>,
    /// Steps per run.
    pub steps: usize,
    /// Trigger period.
    pub trigger: u64,
    /// The shared strong-scaling case.
    pub case: CaseSetup,
    /// Mesh parameters behind `case`.
    pub params: CaseParams,
    /// Derated Polaris model.
    pub machine: MachineModel,
    /// Applied throughput derating factor.
    pub derate: f64,
}

/// Build the fig2/fig3 sweep from the common flags (`--scale`, `--steps`,
/// `--trigger`, `--full`).
pub fn pb146_strong_scaling(args: &HarnessArgs) -> Pb146Sweep {
    let scale = if args.full {
        1
    } else {
        args.scale.unwrap_or(40)
    };
    // `--ranks N` collapses the sweep to one actually-executed cell at
    // exactly N ranks (the event-scheduler smoke runs the paper's 1120
    // this way); otherwise the paper series is divided by `--scale`.
    let (paper_ranks, ranks): (Vec<usize>, Vec<usize>) = match args.ranks {
        Some(n) => (vec![n.max(2)], vec![n.max(2)]),
        None => {
            let paper = vec![280usize, 560, 1120];
            let scaled = paper.iter().map(|&r| (r / scale).max(2)).collect();
            (paper, scaled)
        }
    };
    let steps = args.steps.unwrap_or(if args.full { 3000 } else { 60 });
    let trigger = args.trigger.unwrap_or(if args.full { 100 } else { 10 });

    // Strong scaling: one global mesh sized for the largest rank count.
    // At `--ranks` (the paper's real counts on one host) the cross-
    // section thins to a single element — per-step cost is then
    // dominated by the world-wide rendezvous being exercised, and the
    // throughput derate below restores the paper's per-rank load in
    // virtual time exactly as for the scaled sweep.
    let nz = *ranks.iter().max().expect("nonempty");
    let mut params = CaseParams::pb146_default();
    params.elems = if args.ranks.is_some() {
        [1, 1, nz.max(8)]
    } else {
        [4, 4, nz.max(8)]
    };
    let case = pb146(&params, 146);

    // Restore the paper's compute:communication ratio: the production
    // pb146 mesh is ~350k spectral elements at N=7 (≈1.8e8 grid points);
    // derate the machine's throughputs by the per-rank size ratio so each
    // rank's kernels/transfers/IO take as long as they would at full scale.
    let paper_nodes = 350_000.0 * 512.0;
    let our_nodes = (case.n_fluid_elems() * (params.order + 1).pow(3)) as f64;
    let derate = ((paper_nodes / our_nodes) * (ranks[0] as f64 / paper_ranks[0] as f64)).max(1.0);
    let machine = MachineModel::polaris().derate_throughput(derate);

    Pb146Sweep {
        paper_ranks,
        ranks,
        steps,
        trigger,
        case,
        params,
        machine,
        derate,
    }
}

/// A §4.1 run configuration with the shared defaults (800×600 images, no
/// faults, cost-model only); callers override `output_dir`/`trace`/`exec`
/// as needed.
pub fn insitu_config(sweep: &Pb146Sweep, ranks: usize, mode: InSituMode) -> InSituConfig {
    InSituConfig {
        case: sweep.case.clone(),
        ranks,
        steps: sweep.steps,
        trigger_every: sweep.trigger,
        machine: sweep.machine.clone(),
        image_size: (800, 600),
        mode,
        exec: nek_sensei::ExecMode::default(),
        sched: commsim::SchedMode::default(),
        faults: FaultPlan::none(),
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// The §4.2 JUWELS Booster model derated to the paper's per-rank load
/// (~4e5 grid points per A100 against our 576-node weak-scaling slabs).
pub fn juwels_derated() -> (MachineModel, f64) {
    let our_per_rank_nodes = (3 * 3 * 4usize.pow(3)) as f64;
    let derate = (4.0e5 / our_per_rank_nodes).max(1.0);
    (
        MachineModel::juwels_booster().derate_throughput(derate),
        derate,
    )
}

/// The §4.2 weak-scaling RBC case at `sim_ranks`: constant 9 elements per
/// rank at order 3, domain growing with the rank count, and a fixed-work
/// pressure solve emulating NekRS's resolution-independent p-multigrid.
pub fn rbc_weak_scaling(sim_ranks: usize) -> CaseSetup {
    let mut params = CaseParams::rbc_default();
    params.elems = [3, 3, sim_ranks];
    params.order = 3;
    // Weak scaling: the domain grows with the rank count so the element
    // size (and solver conditioning) is constant.
    params.lengths = Some([2.0, 2.0, sim_ranks as f64 / 4.0]);
    let mut case = rbc(&params, 1e5, 0.7);
    // Emulate NekRS's resolution-independent (p-multigrid) pressure solve
    // with a fixed-work CG: constant iterations per step.
    case.config.pressure_cg.tol = 1e-12;
    case.config.pressure_cg.abs_tol = 1e-30;
    case.config.pressure_cg.max_iter = 25;
    case
}

/// A §4.2 run configuration with the shared defaults (4:1 ratio,
/// UCX/HDR200 link, blocking 8-packet queues, 800×600 images, no faults).
pub fn intransit_config(
    sim_ranks: usize,
    steps: usize,
    trigger: u64,
    machine: MachineModel,
    mode: nek_sensei::EndpointMode,
) -> InTransitConfig {
    InTransitConfig {
        case: rbc_weak_scaling(sim_ranks),
        sim_ranks,
        ratio: 4,
        steps,
        trigger_every: trigger,
        machine,
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode,
        sched: commsim::SchedMode::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (800, 600),
        output_dir: None,
        faults: FaultPlan::none(),
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// The Figure 1 view: pebble-bed surface by velocity magnitude, pressure
/// slice, Q-criterion vortex cores.
pub fn pb146_showcase_pipeline() -> RenderPipeline {
    RenderPipeline {
        width: 1000,
        height: 750,
        passes: vec![
            RenderPass {
                name: "pebble_bed_surface".into(),
                filter: FilterKind::Surface,
                array: "velocity".into(),
                colormap: Colormap::viridis(),
                range: None,
                camera_dir: [1.0, 0.8, 0.45],
            },
            RenderPass {
                name: "pressure_slice".into(),
                filter: FilterKind::Slice {
                    origin: [0.5, 0.5, 1.0],
                    normal: [0.0, 1.0, 0.0],
                },
                array: "pressure".into(),
                colormap: Colormap::cool_warm(),
                range: None,
                camera_dir: [0.0, -1.0, 0.15],
            },
            RenderPass {
                name: "q_criterion_cores".into(),
                filter: FilterKind::ContourAtFraction(0.55),
                array: "q_criterion".into(),
                colormap: Colormap::viridis(),
                range: None,
                camera_dir: [0.8, 1.0, 0.5],
            },
        ],
        compositing: Compositing::Gather,
        legend: true,
    }
}

/// The Figure 4 view: a vertical temperature slice plus a velocity-
/// magnitude contour of the RBC case.
pub fn rbc_side_view_pipeline() -> RenderPipeline {
    RenderPipeline {
        width: 1200,
        height: 500,
        passes: vec![
            RenderPass {
                name: "rbc_side_temperature".into(),
                filter: FilterKind::Slice {
                    origin: [1.0, 1.0, 0.5],
                    normal: [0.0, 1.0, 0.0],
                },
                array: "temperature".into(),
                colormap: Colormap::cool_warm(),
                range: Some((0.0, 1.0)),
                camera_dir: [0.0, -1.0, 0.0],
            },
            RenderPass {
                name: "rbc_velocity_contour".into(),
                filter: FilterKind::ContourAtFraction(0.5),
                array: "velocity".into(),
                colormap: Colormap::viridis(),
                range: None,
                camera_dir: [0.6, -1.0, 0.35],
            },
        ],
        compositing: Compositing::Gather,
        legend: true,
    }
}

/// Render one frame of `solver`'s current state through `pipeline`
/// (publishing exactly the arrays the passes request) and return
/// `(images_rendered, bytes_written)`.
pub fn render_current_state(
    comm: &mut Comm,
    solver: &mut FlowSolver,
    pipeline: RenderPipeline,
    out: Option<std::path::PathBuf>,
) -> (u64, u64) {
    let plane = SnapshotPlane::new(comm, solver);
    let mut analysis = CatalystAnalysis::new(nek_sensei::MESH_NAME, pipeline, out);
    let mut da = plane.publish(comm, solver, analysis.required_arrays());
    analysis.execute(comm, &mut da).expect("render");
    (analysis.images_rendered(), analysis.bytes_written())
}
