//! **Chaos soak** — the proof harness for the run supervisor: a matrix of
//! seeded randomized fault schedules (sim-rank crashes, consumer stalls,
//! on-disk checkpoint corruption) executed end-to-end under supervision.
//!
//! Every schedule must satisfy the recovery contract:
//!
//! 1. **Completion** — the run finishes all steps despite the schedule
//!    (the restart budget always covers the scheduled crash count).
//! 2. **Bounded loss** — every individual recovery replays at most one
//!    checkpoint interval of steps (crashes fire *before* that step's
//!    generation is cut, so the newest complete generation is never more
//!    than one interval behind).
//! 3. **No poisoned restores** — a restore never reads a generation that
//!    failed CRC/manifest validation: within each recovery, the resumed
//!    step is never one the scan just quarantined.
//! 4. **Observability** — restarts, lost steps, and quarantines all show
//!    up as supervisor counters and as `RecoveryStarted` /
//!    `RecoveryCompleted` / `GenerationQuarantined` events in the final
//!    attempt's RunReport.
//!
//! `--seeds N` sizes the matrix (default 24; CI runs a small fixed
//! subset), `--json-out FILE` writes a machine-readable summary.

use bench_harness::{format_table, HarnessArgs};
use commsim::{CheckpointCorruption, ConsumerStall, FaultPlan, MachineModel, SimRankCrash};
use nek_sensei::{
    run_supervised_insitu, run_supervised_intransit, EndpointMode, ExecMode, InSituConfig,
    InSituMode, InTransitConfig, RecoveryOptions, RecoveryStats, SupervisorConfig,
};
use sem::cases::{pb146, rbc, CaseParams};
use telemetry::{EventKind, RunReport, TelemetryHub};
use transport::{QueuePolicy, StagingLink, WriterConfig};

const STEPS: usize = 12;
const INTERVAL: u64 = 2;
const MAX_RESTARTS: u32 = 3;

/// Deterministic splitmix64 stream; the workspace vendors no rand crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One seed's derived fault schedule.
struct Schedule {
    driver: Driver,
    faults: FaultPlan,
    crashes: usize,
    corruptions: usize,
    stalls: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Driver {
    InSitu,
    InTransit,
}

impl Driver {
    fn label(self) -> &'static str {
        match self {
            Self::InSitu => "insitu",
            Self::InTransit => "intransit",
        }
    }

    fn sim_ranks(self) -> usize {
        match self {
            Self::InSitu => 2,
            Self::InTransit => 4,
        }
    }
}

/// Derive a schedule from a seed. Crashes stay within the restart budget,
/// and scheduled disk corruption only ever hits generations at least two
/// intervals older than the first crash — the newest generation at any
/// crash is therefore always valid, which is what makes the ≤-one-interval
/// loss bound assertable per seed (older corrupted generations still get
/// audited and quarantined by the recovery scan).
fn schedule(seed: u64) -> Schedule {
    let mut rng = Rng::new(seed);
    let driver = if seed.is_multiple_of(3) {
        Driver::InTransit
    } else {
        Driver::InSitu
    };
    let ranks = driver.sim_ranks();
    let mut faults = FaultPlan::none();
    faults.seed = seed;

    let n_crashes = 1 + rng.below(2) as usize; // 1..=2 < MAX_RESTARTS + 1
    let mut at = 1 + rng.below(8); // first crash in 1..=8
    for _ in 0..n_crashes {
        faults.sim_crashes.push(SimRankCrash {
            rank: rng.below(ranks as u64) as usize,
            at_step: at,
        });
        // Later crashes land strictly after earlier ones so each consumes
        // exactly one restart.
        at += 2 + rng.below(3);
        if at > STEPS as u64 {
            break;
        }
    }
    let first_crash = faults.sim_crashes[0].at_step;

    // Corrupt a generation that is at least two intervals older than the
    // first crash (see above). Needs first_crash ≥ 2·INTERVAL + something
    // due, so it only fires on later-crashing seeds.
    let newest_safe = first_crash.saturating_sub(2 * INTERVAL);
    let corruptible = newest_safe / INTERVAL; // due generations ≤ newest_safe
    if corruptible > 0 {
        faults.disk_corruptions.push(CheckpointCorruption {
            rank: rng.below(ranks as u64) as usize,
            at_step: INTERVAL * (1 + rng.below(corruptible)),
        });
    }

    // A slow endpoint exercises staging backpressure on the in-transit
    // cells (the endpoint is transport-side, so in situ cells have none).
    if driver == Driver::InTransit {
        faults.stalls.push(ConsumerStall {
            endpoint: 0,
            at_step: 1 + rng.below(STEPS as u64 - 1),
            seconds: 0.5 + rng.below(25) as f64 / 10.0,
        });
    }

    Schedule {
        driver,
        crashes: faults.sim_crashes.len(),
        corruptions: faults.disk_corruptions.len(),
        stalls: faults.stalls.len(),
        faults,
    }
}

fn insitu_cfg(faults: FaultPlan, hub: TelemetryHub) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 4),
        ranks: Driver::InSitu.sim_ranks(),
        steps: STEPS,
        trigger_every: 2,
        machine: MachineModel::test_tiny(),
        image_size: (32, 24),
        mode: InSituMode::Original,
        exec: ExecMode::Synchronous,
        sched: Default::default(),
        faults,
        output_dir: None,
        trace: false,
        telemetry: true,
        recovery: RecoveryOptions {
            hub: Some(hub),
            ..Default::default()
        },
    }
}

fn intransit_cfg(faults: FaultPlan, hub: TelemetryHub) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: Driver::InTransit.sim_ranks(),
        ratio: 4,
        steps: STEPS,
        trigger_every: 2,
        machine: MachineModel::test_tiny(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Checkpointing,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (32, 24),
        output_dir: None,
        faults,
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: true,
        recovery: RecoveryOptions {
            hub: Some(hub),
            ..Default::default()
        },
    }
}

/// Invariant 3: within each recovery, the resumed step is never one the
/// same scan quarantined. (A step quarantined in an *earlier* recovery may
/// legitimately be re-cut by the replay and restored later, so this is
/// checked per outcome, not against the union of all quarantines.)
fn assert_no_poisoned_restores(seed: u64, stats: &RecoveryStats) {
    for o in &stats.outcomes {
        assert!(
            o.resumed_from == 0 || !o.quarantined.contains(&o.resumed_from),
            "seed {seed}: resumed from step {} which that recovery's scan \
             quarantined ({:?})",
            o.resumed_from,
            o.quarantined
        );
    }
}

/// Check invariants 2–4 against the stats, counters and event log.
fn assert_contract(
    seed: u64,
    sched: &Schedule,
    stats: &RecoveryStats,
    hub: &TelemetryHub,
    report: &RunReport,
) {
    assert_eq!(
        stats.restarts as usize, sched.crashes,
        "seed {seed}: each scheduled crash consumes exactly one restart"
    );
    for o in &stats.outcomes {
        let lost = o.at_step.unwrap_or(0).saturating_sub(o.resumed_from);
        assert!(
            lost <= INTERVAL,
            "seed {seed}: recovery lost {lost} steps (> interval {INTERVAL}): {}",
            o.detail
        );
    }
    assert!(
        stats.lost_steps <= stats.restarts as u64 * INTERVAL,
        "seed {seed}: aggregate loss exceeds restarts × interval"
    );

    // Counters: the supervisor's ledger and the hub agree.
    assert_eq!(
        hub.counter_sum("supervisor/restarts"),
        stats.restarts as u64
    );
    assert_eq!(hub.counter_sum("supervisor/lost_steps"), stats.lost_steps);
    assert_eq!(
        hub.counter_sum("supervisor/quarantined_generations"),
        stats.quarantined
    );

    // Events: every recovery is visible in the final RunReport.
    let count = |kind: EventKind| report.events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(EventKind::RecoveryStarted), stats.restarts as usize);
    assert_eq!(count(EventKind::RecoveryCompleted), stats.restarts as usize);
    assert_eq!(
        count(EventKind::GenerationQuarantined),
        stats.quarantined as usize
    );
    assert_no_poisoned_restores(seed, stats);
}

struct SeedResult {
    seed: u64,
    driver: &'static str,
    crashes: usize,
    corruptions: usize,
    stalls: usize,
    restarts: u32,
    lost_steps: u64,
    quarantined: u64,
    max_lost: u64,
}

fn run_seed(seed: u64) -> SeedResult {
    let sched = schedule(seed);
    let dir = std::env::temp_dir().join(format!("chaos-soak-s{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sup = SupervisorConfig::new(dir.clone(), INTERVAL);
    sup.max_restarts = MAX_RESTARTS;
    let hub = TelemetryHub::default();

    let (stats, steps_done, report) = match sched.driver {
        Driver::InSitu => {
            let out = run_supervised_insitu(&insitu_cfg(sched.faults.clone(), hub.clone()), &sup);
            let report = out.report.run_report.expect("telemetry forced on");
            (out.recovery, out.report.steps, report)
        }
        Driver::InTransit => {
            let out =
                run_supervised_intransit(&intransit_cfg(sched.faults.clone(), hub.clone()), &sup);
            let report = out.report.run_report.expect("telemetry forced on");
            (out.recovery, out.report.steps, report)
        }
    };

    assert_eq!(
        steps_done, STEPS,
        "seed {seed}: run must complete all steps"
    );
    assert_contract(seed, &sched, &stats, &hub, &report);
    let _ = std::fs::remove_dir_all(&dir);

    let max_lost = stats
        .outcomes
        .iter()
        .map(|o| o.at_step.unwrap_or(0).saturating_sub(o.resumed_from))
        .max()
        .unwrap_or(0);
    SeedResult {
        seed,
        driver: sched.driver.label(),
        crashes: sched.crashes,
        corruptions: sched.corruptions,
        stalls: sched.stalls,
        restarts: stats.restarts,
        lost_steps: stats.lost_steps,
        quarantined: stats.quarantined,
        max_lost,
    }
}

fn write_json(path: &std::path::Path, results: &[SeedResult]) {
    use telemetry::json::{push_f64, push_str};
    let mut out = String::new();
    out.push_str("{\"schema\": \"nekstat/chaos-soak/v1\", ");
    out.push_str(&format!(
        "\"seeds\": {}, \"steps\": {STEPS}, \"interval\": {INTERVAL}, \
         \"max_restarts\": {MAX_RESTARTS}, \"all_ok\": true, \"results\": [",
        results.len()
    ));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"seed\": {}, \"driver\": ", r.seed));
        push_str(&mut out, r.driver);
        out.push_str(&format!(
            ", \"crashes\": {}, \"corruptions\": {}, \"stalls\": {}, \
             \"restarts\": {}, \"lost_steps\": {}, \"quarantined\": {}, \
             \"max_lost_single_recovery\": ",
            r.crashes, r.corruptions, r.stalls, r.restarts, r.lost_steps, r.quarantined
        ));
        push_f64(&mut out, r.max_lost as f64);
        out.push_str(", \"ok\": true}");
    }
    out.push_str("]}");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, out).expect("write JSON summary");
    println!("\nwrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    let seeds = args.seeds.unwrap_or(24);
    println!(
        "chaos soak: {seeds} seeded fault schedules over supervised runs \
         ({STEPS} steps, checkpoint every {INTERVAL}, restart budget {MAX_RESTARTS})\n"
    );

    let mut results = Vec::new();
    for seed in 0..seeds {
        let r = run_seed(seed);
        println!(
            "seed {:>3} [{:>9}] crashes={} corruptions={} stalls={} -> \
             restarts={} lost={} quarantined={} (max single loss {})",
            r.seed,
            r.driver,
            r.crashes,
            r.corruptions,
            r.stalls,
            r.restarts,
            r.lost_steps,
            r.quarantined,
            r.max_lost,
        );
        results.push(r);
    }

    let headers = [
        "seed",
        "driver",
        "crashes",
        "corrupt",
        "stalls",
        "restarts",
        "lost",
        "quarantined",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                r.driver.to_string(),
                r.crashes.to_string(),
                r.corruptions.to_string(),
                r.stalls.to_string(),
                r.restarts.to_string(),
                r.lost_steps.to_string(),
                r.quarantined.to_string(),
            ]
        })
        .collect();
    println!("\n{}", format_table(&headers, &rows));

    let total_restarts: u32 = results.iter().map(|r| r.restarts).sum();
    let total_quarantined: u64 = results.iter().map(|r| r.quarantined).sum();
    println!(
        "all {seeds} schedules completed: {total_restarts} recoveries, \
         {total_quarantined} generations quarantined, every loss ≤ {INTERVAL} steps"
    );

    if let Some(path) = &args.json_out {
        write_json(path, &results);
    }
}
