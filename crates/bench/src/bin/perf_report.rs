//! `perf_report` — real-wall-clock benchmark of the pool-parallel hot
//! paths across a thread-scaling curve (1, 2, 4 threads), emitting
//! `BENCH_sem.json`.
//!
//! Unlike the figure harnesses (virtual-clock, machine-model time), this
//! binary measures *actual* elapsed time on the monotonic clock via the
//! shared warmup + samples + median/MAD harness in the `criterion` shim.
//! Each workload runs at pool widths 1, 2 and 4, so the report shows the
//! realized scaling of the element-block-parallel SEM kernels; the
//! reported `speedups` entry is t(1)/t(4). On a single-core host the
//! configurations are expected to tie (the report records `host_threads`
//! so CI readers can tell).
//!
//! Usage: `perf_report [--quick] [--out BENCH_sem.json] [--baseline PATH]`
//!
//! `--baseline PATH` compares each bench median against a committed
//! earlier `BENCH_sem.json` with a noise-aware gate: drift is measured
//! in units of the *effective MAD* — the larger of the baseline MAD,
//! the current MAD, and 1% of the baseline median — so quiet benches
//! get tight tolerances and noisy ones get slack automatically. Drifts
//! beyond 2·MAD warn; for the solver benches (`ns_step`,
//! `sem_operators`) a *slowdown* beyond 4·MAD is a hard failure
//! (exit 1) — but only when the current host's thread count matches
//! the baseline's, since medians from differently-sized hosts are not
//! comparable. Render/transport benches stay warn-only (too
//! image/IO-noise-dominated to gate on).

use commsim::{run_ranks, Comm, MachineModel};
use criterion::{measure, Stats};
use rayon::pool;
use render::{CatalystAnalysis, RenderPipeline};
use sem::cases::{pb146, CaseParams};
use sem::gs::GatherScatter;
use sem::mesh::{LocalMesh, MeshSpec};
use sem::operators::Ops;
use std::sync::Arc;

struct BenchResult {
    name: &'static str,
    threads: usize,
    stats: Stats,
}

/// Work sizes for one benchmark pass.
#[derive(Clone, Copy)]
struct Sizing {
    /// Timed samples per configuration.
    samples: usize,
    /// SEM polynomial order for the kernel benches.
    order: usize,
    /// Elements per axis for the kernel benches.
    elems: usize,
    /// Flow-solver steps per sample.
    ns_steps: usize,
    /// Render image edge (pixels).
    image: usize,
}

const FULL: Sizing = Sizing {
    samples: 7,
    order: 7,
    elems: 6,
    ns_steps: 2,
    image: 256,
};

const QUICK: Sizing = Sizing {
    samples: 3,
    order: 5,
    elems: 4,
    ns_steps: 1,
    image: 96,
};

fn kernel_fixture(comm: &mut Comm, sz: Sizing) -> (LocalMesh, GatherScatter, Ops, Vec<f64>) {
    let spec = Arc::new(MeshSpec::box_mesh(
        sz.order,
        [sz.elems; 3],
        [1.0; 3],
        [false; 3],
    ));
    let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
    let gs = GatherScatter::new(&mesh, comm);
    let ops = Ops::new(&mesh);
    let n = mesh.layout().n_nodes();
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    (mesh, gs, ops, u)
}

fn bench_sem_operators(threads: usize, sz: Sizing) -> Stats {
    pool::with_override(threads, || {
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let (_mesh, _gs, ops, u) = kernel_fixture(comm, sz);
            let mut out = vec![0.0; u.len()];
            let mut scratch = vec![0.0; u.len()];
            measure(1, sz.samples, || {
                ops.stiffness_apply(comm, &u, &mut out, &mut scratch);
                criterion::black_box(&out);
            })
        })[0]
    })
}

fn bench_gather_scatter(threads: usize, sz: Sizing) -> Stats {
    pool::with_override(threads, || {
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let (_mesh, gs, _ops, u) = kernel_fixture(comm, sz);
            let mut field = u.clone();
            measure(1, sz.samples, || {
                gs.sum(comm, &mut field);
                criterion::black_box(&field);
            })
        })[0]
    })
}

fn bench_ns_step(threads: usize, sz: Sizing) -> Stats {
    pool::with_override(threads, || {
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 4];
            params.order = sz.order.min(5);
            let mut solver = pb146(&params, 8).build(comm);
            // Warm the workspace arena so samples measure steady state.
            solver.step(comm);
            measure(1, sz.samples, || {
                for _ in 0..sz.ns_steps {
                    solver.step(comm);
                }
            })
        })[0]
    })
}

fn bench_render_pipeline(threads: usize, sz: Sizing) -> Stats {
    pool::with_override(threads, || {
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 4];
            params.order = 3;
            let mut solver = pb146(&params, 8).build(comm);
            solver.step(comm);
            let mut pipeline = RenderPipeline::two_image_default("pressure", "velocity");
            pipeline.width = sz.image;
            pipeline.height = sz.image;
            let mut analysis = CatalystAnalysis::new("mesh", pipeline, None);
            let plane = nek_sensei::SnapshotPlane::new(comm, &solver);
            measure(1, sz.samples, || {
                let mut da = plane.publish(comm, &mut solver, ["pressure", "velocity"]);
                insitu::AnalysisAdaptor::execute(&mut analysis, comm, &mut da)
                    .expect("render pipeline");
            })
        })[0]
    })
}

/// Virtual-clock time of the same Catalyst run in synchronous vs
/// pipelined execution, plus the overlap ratio: the fraction of the
/// in situ overhead (time beyond the bare solver) hidden by running the
/// consumers concurrently with the next timesteps.
struct ExecOverlap {
    original_s: f64,
    sync_s: f64,
    pipelined_s: f64,
}

impl ExecOverlap {
    fn overlap_ratio(&self) -> f64 {
        let overhead = self.sync_s - self.original_s;
        if overhead <= 0.0 {
            return 0.0;
        }
        ((self.sync_s - self.pipelined_s) / overhead).clamp(0.0, 1.0)
    }
}

fn measure_exec_overlap(quick: bool) -> ExecOverlap {
    use nek_sensei::{run_insitu, ExecMode, InSituConfig, InSituMode};
    let mut params = CaseParams::pb146_default();
    params.elems = if quick { [2, 2, 4] } else { [3, 3, 6] };
    params.order = 3;
    let case = pb146(&params, 8);
    let run = |mode, exec| {
        run_insitu(&InSituConfig {
            case: case.clone(),
            ranks: 2,
            steps: if quick { 6 } else { 12 },
            trigger_every: 2,
            machine: MachineModel::polaris(),
            image_size: (128, 96),
            mode,
            exec,
            sched: Default::default(),
            faults: commsim::FaultPlan::none(),
            output_dir: None,
            trace: false,
            telemetry: false,
            recovery: Default::default(),
        })
        .metrics
        .time_to_solution
    };
    ExecOverlap {
        original_s: run(InSituMode::Original, ExecMode::Synchronous),
        sync_s: run(InSituMode::Catalyst, ExecMode::Synchronous),
        pipelined_s: run(InSituMode::Catalyst, ExecMode::Pipelined),
    }
}

fn json_escape_free(name: &str) -> &str {
    // Bench names are static identifiers; nothing to escape.
    name
}

fn write_report(
    path: &str,
    host_threads: usize,
    quick: bool,
    results: &[BenchResult],
    overlap: &ExecOverlap,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"insitu_exec\": {{\"original_virtual_s\": {:.9}, \"sync_virtual_s\": {:.9}, \"pipelined_virtual_s\": {:.9}, \"overlap_ratio\": {:.4}}},\n",
        overlap.original_s,
        overlap.sync_s,
        overlap.pipelined_s,
        overlap.overlap_ratio()
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"median_s\": {:.9}, \"mad_s\": {:.9}, \"samples\": {}}}{}\n",
            json_escape_free(r.name),
            r.threads,
            r.stats.median_s,
            r.stats.mad_s,
            r.stats.n,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let names: Vec<&str> = {
        let mut v: Vec<&str> = results.iter().map(|r| r.name).collect();
        v.dedup();
        v
    };
    for (i, name) in names.iter().enumerate() {
        let t1 = results
            .iter()
            .find(|r| r.name == *name && r.threads == 1)
            .map(|r| r.stats.median_s);
        // Speedup over the curve: t(1) / t(widest measured width).
        let tn = results
            .iter()
            .filter(|r| r.name == *name && r.threads != 1)
            .max_by_key(|r| r.threads)
            .map(|r| r.stats.median_s);
        let speedup = match (t1, tn) {
            (Some(a), Some(b)) if b > 0.0 => a / b,
            _ => 1.0,
        };
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            name,
            speedup,
            if i + 1 < names.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write BENCH_sem.json");
    println!("wrote {path}");
}

/// Drift beyond this many effective MADs prints a warning.
const WARN_MADS: f64 = 2.0;

/// A gated-bench *slowdown* beyond this many effective MADs fails.
const FAIL_MADS: f64 = 4.0;

/// Floor on the effective MAD as a fraction of the baseline median, so
/// a freakishly quiet sample set (MAD ≈ 0) cannot turn measurement
/// jitter into a hard failure.
const MAD_FLOOR_FRAC: f64 = 0.01;

/// Benches where a slowdown beyond the failure threshold fails the run
/// (the solver hot path this repo optimizes). Render/transport benches
/// stay warn-only.
const GATED_BENCHES: [&str; 2] = ["ns_step", "sem_operators"];

/// Compare `results` against a committed `BENCH_sem.json` with a
/// noise-aware gate: the unit of drift is the **effective MAD** —
/// `max(baseline mad_s, current mad_s, 1% of the baseline median)` —
/// so the tolerance scales with how noisy the bench actually is
/// instead of a fixed percentage. Drifts beyond [`WARN_MADS`] warn;
/// gated-bench slowdowns beyond [`FAIL_MADS`] block. Returns the
/// number of *blocking* regressions: gated benches that regressed
/// while the host's thread count matches the baseline's (a baseline
/// recorded on a differently-sized host is informational only —
/// wall-clock medians across host shapes are not comparable).
fn compare_baseline(path: &str, host_threads: usize, results: &[BenchResult]) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("baseline: cannot read {path}: {e} (skipping comparison)");
            return 0;
        }
    };
    let doc = match telemetry::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("baseline: {path} is not valid JSON: {e} (skipping comparison)");
            return 0;
        }
    };
    let Some(benches) = doc.get("benches").and_then(|b| b.as_arr()) else {
        println!("baseline: {path} has no benches array (skipping comparison)");
        return 0;
    };
    let base_threads = doc.get("host_threads").and_then(|v| v.as_u64());
    let comparable = base_threads == Some(host_threads as u64);
    if !comparable {
        println!(
            "baseline: recorded on host_threads={} but this host has {host_threads} — \
             comparison is informational only",
            base_threads.map_or("?".to_string(), |t| t.to_string())
        );
    }
    println!(
        "baseline comparison vs {path} (warn > {WARN_MADS:.0}·MAD, fail > {FAIL_MADS:.0}·MAD \
         slowdowns for {GATED_BENCHES:?}{}):",
        if comparable { "" } else { " — suspended" }
    );
    let mut drifted = 0usize;
    let mut blocking = 0usize;
    for r in results {
        let base = benches.iter().find(|b| {
            b.get("name").and_then(|v| v.as_str()) == Some(r.name)
                && b.get("threads").and_then(|v| v.as_u64()) == Some(r.threads as u64)
        });
        let Some(base) = base else {
            println!(
                "  {:<18} threads={:<3} no baseline entry",
                r.name, r.threads
            );
            continue;
        };
        let Some(median) = base.get("median_s").and_then(|v| v.as_f64()) else {
            continue;
        };
        if median <= 0.0 {
            continue;
        }
        // Older baselines may lack mad_s; the median floor covers them.
        let base_mad = base.get("mad_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let mad_eff = base_mad
            .max(r.stats.mad_s)
            .max(median * MAD_FLOOR_FRAC);
        let drift = r.stats.median_s - median;
        let mads = drift / mad_eff;
        let pct = drift / median * 100.0;
        if mads.abs() > WARN_MADS {
            drifted += 1;
            let gated = comparable && GATED_BENCHES.contains(&r.name) && mads > FAIL_MADS;
            if gated {
                blocking += 1;
            }
            println!(
                "  {} {:<10} threads={:<3} {:+.1}·MAD ({:+.1}%) vs baseline ({:.3} ms -> {:.3} ms, MAD {:.3} ms)",
                if gated { "FAIL   " } else { "WARNING" },
                r.name,
                r.threads,
                mads,
                pct,
                median * 1e3,
                r.stats.median_s * 1e3,
                mad_eff * 1e3
            );
        } else {
            println!(
                "  ok      {:<10} threads={:<3} {:+.1}·MAD ({:+.1}%)",
                r.name, r.threads, mads, pct
            );
        }
    }
    if drifted > 0 {
        println!("baseline: {drifted} bench(es) drifted beyond {WARN_MADS:.0}·MAD ({blocking} blocking)");
    }
    blocking
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sem.json".to_string());
    let baseline = argv
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let sz = if quick { QUICK } else { FULL };

    let host_threads = pool::default_threads();
    println!(
        "perf_report: host_threads={host_threads}, thread curve [1, 2, 4]{}",
        if quick { " [quick]" } else { "" }
    );

    type BenchFn = fn(usize, Sizing) -> Stats;
    let benches: [(&'static str, BenchFn); 4] = [
        ("sem_operators", bench_sem_operators),
        ("gather_scatter", bench_gather_scatter),
        ("ns_step", bench_ns_step),
        ("render_pipeline", bench_render_pipeline),
    ];

    let mut results = Vec::new();
    for (name, f) in benches {
        for threads in [1usize, 2, 4] {
            let stats = f(threads, sz);
            println!(
                "  {name:<18} threads={threads:<3} {:>10.3} ms/iter (median, ±{:.3} MAD, n={})",
                stats.median_s * 1e3,
                stats.mad_s * 1e3,
                stats.n
            );
            results.push(BenchResult {
                name,
                threads,
                stats,
            });
        }
    }
    let overlap = measure_exec_overlap(quick);
    println!(
        "  insitu exec (virtual): original {:.4}s, sync {:.4}s, pipelined {:.4}s → overlap ratio {:.2}",
        overlap.original_s,
        overlap.sync_s,
        overlap.pipelined_s,
        overlap.overlap_ratio()
    );
    write_report(&out_path, host_threads, quick, &results, &overlap);
    if let Some(baseline) = baseline {
        let blocking = compare_baseline(&baseline, host_threads, &results);
        if blocking > 0 {
            println!("perf_report: FAILED — {blocking} gated bench regression(s)");
            std::process::exit(1);
        }
    }
}
