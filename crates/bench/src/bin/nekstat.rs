//! **nekstat** — read one or two `RunReport` JSON artifacts (written by
//! the figure harnesses via `--report-out`) and print a human summary,
//! no stdout scraping required.
//!
//! ```text
//! nekstat reports/fig2_catalyst_7ranks.report.json            # summary
//! nekstat summary report.json --json                          # machine summary
//! nekstat before.report.json after.report.json                # diff
//! nekstat critical-path report.json [--json]                  # dominant chain
//! nekstat --follow 127.0.0.1:4455 [--json] [--max-snapshots N]
//! ```
//!
//! `critical-path` reads the `critical` block a traced run embeds in
//! its report and names the dominant (rank, phase) chain, per-step
//! breakdown, and per-rank slack. `--follow` attaches a live telemetry
//! session to a running `staging_bench`/figure process (its staging
//! consumer port) and prints one line per streamed delta snapshot;
//! detaching (ctrl-C or `--max-snapshots`) never perturbs the run.

use bench_harness::{fmt_secs, format_table};
use std::collections::BTreeMap;
use telemetry::{json, EventKind, MetricValue, RunReport};

/// Schema tag of `nekstat summary --json` output.
const SUMMARY_SCHEMA: &str = "nekstat/summary/v1";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("critical-path") => critical_path_cmd(&args[1..]),
        Some("summary") => summary_cmd(&args[1..]),
        Some("--follow") => follow_cmd(&args[1..]),
        Some("diff") if args.len() == 3 => diff(&load(&args[1]), &load(&args[2])),
        _ => match args.as_slice() {
            [path] => summarize(&load(path)),
            [a, b] => diff(&load(a), &load(b)),
            _ => usage(),
        },
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: nekstat <report.json> [other-report.json]\n\
         \x20      nekstat summary <report.json> [--json]\n\
         \x20      nekstat critical-path <report.json> [--json]\n\
         \x20      nekstat --follow <host:port> [--json] [--max-snapshots N]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> RunReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("nekstat: cannot read {path}: {e}");
        std::process::exit(1);
    });
    RunReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("nekstat: {path}: {e}");
        std::process::exit(1);
    })
}

/// Strip a `rank<k>/` or `endpoint<k>/` prefix so per-rank instruments
/// aggregate into one row per logical metric.
///
/// Prefix rules:
/// * `rank<k>/<metric>` — simulation-world rank scope; stripped, and the
///   remainder aggregates (counters sum, ratio gauges average,
///   histograms combine) across ranks.
/// * `endpoint<k>/<metric>` — endpoint-world rank scope; stripped the
///   same way but kept separate from the simulation rows by an
///   `endpoint:` marker, so sim and endpoint totals never mix.
/// * Anything else (including `staging/session<k>/…`, which scopes a
///   *consumer session*, not a rank) passes through untouched —
///   session rows are per-session facts and must not sum.
fn base_name(name: &str) -> (&str, bool) {
    if let Some((scope, rest)) = name.split_once('/') {
        let endpoint = scope.starts_with("endpoint");
        let scoped = (scope.starts_with("rank") || endpoint)
            && scope
                .trim_start_matches("rank")
                .trim_start_matches("endpoint")
                .chars()
                .all(|c| c.is_ascii_digit());
        if scoped {
            return (rest, endpoint);
        }
    }
    (name, false)
}

/// One aggregated row per logical metric: counters sum over ranks;
/// gauges sum too, except ratio-valued gauges (name ending in `ratio`,
/// e.g. `sem/overlap_ratio`), which average — a sum of per-rank ratios
/// is meaningless; histograms combine counts exactly and keep the worst
/// p95.
enum Agg {
    Counter(u64),
    Gauge { sum: f64, ranks: u64, avg: bool },
    Histogram {
        count: u64,
        p50: f64,
        p90: f64,
        p95: f64,
        p99: f64,
        max: f64,
    },
}

impl Agg {
    /// The displayed gauge value: per-rank average for ratios, sum
    /// otherwise.
    fn gauge_value(sum: f64, ranks: u64, avg: bool) -> f64 {
        if avg && ranks > 0 {
            sum / ranks as f64
        } else {
            sum
        }
    }
}

/// Ratio-valued gauges are averaged over ranks instead of summed.
fn gauge_is_ratio(key: &str) -> bool {
    key.ends_with("ratio")
}

fn aggregate(report: &RunReport) -> BTreeMap<String, Agg> {
    let mut out: BTreeMap<String, Agg> = BTreeMap::new();
    for (name, value) in &report.metrics {
        let (base, endpoint) = base_name(name);
        let key = if endpoint {
            format!("endpoint:{base}")
        } else {
            base.to_string()
        };
        match (out.get_mut(&key), value) {
            (None, MetricValue::Counter(c)) => {
                out.insert(key, Agg::Counter(*c));
            }
            (None, MetricValue::Gauge(g)) => {
                let avg = gauge_is_ratio(&key);
                out.insert(
                    key,
                    Agg::Gauge {
                        sum: *g,
                        ranks: 1,
                        avg,
                    },
                );
            }
            (None, MetricValue::Histogram(h)) => {
                out.insert(
                    key,
                    Agg::Histogram {
                        count: h.count,
                        p50: h.p50,
                        p90: h.p90,
                        p95: h.p95,
                        p99: h.p99,
                        max: h.max,
                    },
                );
            }
            (Some(Agg::Counter(total)), MetricValue::Counter(c)) => *total += c,
            (Some(Agg::Gauge { sum, ranks, .. }), MetricValue::Gauge(g)) => {
                *sum += g;
                *ranks += 1;
            }
            (
                Some(Agg::Histogram {
                    count,
                    p50,
                    p90,
                    p95,
                    p99,
                    max,
                }),
                MetricValue::Histogram(h),
            ) => {
                *count += h.count;
                *p50 = p50.max(h.p50);
                *p90 = p90.max(h.p90);
                *p95 = p95.max(h.p95);
                *p99 = p99.max(h.p99);
                *max = max.max(h.max);
            }
            // Mixed types under one base name: keep the first.
            _ => {}
        }
    }
    out
}

/// Split a `staging/session<k>/<field>` metric into `(k, field)`; the
/// session scope is a consumer id, not a rank prefix (see [`base_name`]).
fn session_scope(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("staging/session")?;
    let (id, field) = rest.split_once('/')?;
    Some((id.parse().ok()?, field))
}

/// Build the per-session fan-out rows from `staging/session<k>/*`
/// counters: one row per session, columns in a fixed order.
fn session_table(aggs: &BTreeMap<String, Agg>) -> Vec<Vec<String>> {
    let mut sessions: BTreeMap<usize, BTreeMap<&str, u64>> = BTreeMap::new();
    for (name, agg) in aggs {
        if let (Some((id, field)), Agg::Counter(c)) = (session_scope(name), agg) {
            sessions.entry(id).or_default().insert(field, *c);
        }
    }
    sessions
        .iter()
        .map(|(id, fields)| {
            let get = |f: &str| fields.get(f).copied().unwrap_or(0).to_string();
            vec![
                id.to_string(),
                get("frames_sent"),
                get("bytes_sent"),
                get("cache_hits"),
                get("catchup_steps"),
            ]
        })
        .collect()
}

fn agg_cell(a: &Agg) -> String {
    match a {
        Agg::Counter(c) => c.to_string(),
        Agg::Gauge { sum, ranks, avg } => {
            format!("{:.3}", Agg::gauge_value(*sum, *ranks, *avg))
        }
        Agg::Histogram {
            count,
            p50,
            p90,
            p95,
            p99,
            max,
        } => format!(
            "n={count} p50={} p90={} p95={} p99={} max={}",
            fmt_secs(*p50),
            fmt_secs(*p90),
            fmt_secs(*p95),
            fmt_secs(*p99),
            fmt_secs(*max)
        ),
    }
}

fn summarize(r: &RunReport) {
    let m = &r.manifest;
    println!(
        "{} / {} / {} ({}) — {} ranks (+{} endpoint), {} steps, trigger every {}, machine {}",
        m.case,
        m.workflow,
        m.mode,
        m.exec,
        m.ranks,
        m.endpoint_ranks,
        m.steps,
        m.trigger_every,
        m.machine
    );
    println!(
        "faults: {} | sched: {} | wire: {} | pool threads: {} | pipeline depth: {}",
        m.fault_plan, m.sched, m.wire, m.pool_threads, m.pipeline_depth
    );

    if !r.series.is_empty() {
        let n = r.series.len();
        let total: f64 = r.series.iter().map(|s| s.t_end - s.t_start).sum();
        let max = r
            .series
            .iter()
            .map(|s| s.t_end - s.t_start)
            .fold(0.0, f64::max);
        println!(
            "\nstep series: {n} samples ({} evicted), mean {} p95 {} max {}",
            r.evicted_samples,
            fmt_secs(total / n as f64),
            fmt_secs(r.step_time_p95()),
            fmt_secs(max)
        );
        let bp = r.total_backpressure_wait();
        if bp > 0.0 {
            println!("backpressure wait (rank 0, total): {}", fmt_secs(bp));
        }
        let retries = r.series.last().map(|s| s.retries).unwrap_or(0);
        if retries > 0 {
            println!("transport retries by final step: {retries}");
        }
    }

    let aggs = aggregate(r);
    if !aggs.is_empty() {
        let rows: Vec<Vec<String>> = aggs
            .iter()
            .filter(|(name, _)| session_scope(name).is_none())
            .map(|(name, a)| vec![name.clone(), agg_cell(a)])
            .collect();
        println!("\nmetrics (summed over ranks; endpoint world prefixed)");
        print!("{}", format_table(&["metric", "value"], &rows));
    }

    let sessions = session_table(&aggs);
    if !sessions.is_empty() {
        println!("\nstaging fan-out (per consumer session)");
        print!(
            "{}",
            format_table(
                &["session", "frames", "bytes", "cache hits", "catch-up steps"],
                &sessions
            )
        );
    }

    if !r.events.is_empty() {
        println!("\nevents ({}):", r.events.len());
        for e in &r.events {
            let step = e.step.map(|s| format!(" step {s}")).unwrap_or_default();
            println!(
                "  t={:<12} pid{} rank{}{} {}: {}",
                format!("{:.4}s", e.at),
                e.pid,
                e.rank,
                step,
                e.kind.as_str(),
                e.detail
            );
        }
    }

    let mem = &r.memory;
    if mem.host_aggregate_peak + mem.gpu_aggregate_peak + mem.unscoped > 0 {
        println!(
            "\nmemory peaks: host aggregate {} (max rank {}), gpu {}, unscoped {}",
            mem.host_aggregate_peak, mem.host_max_rank_peak, mem.gpu_aggregate_peak, mem.unscoped
        );
    }
}

fn pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        if new == 0.0 {
            "±0.0%".into()
        } else {
            "new".into()
        }
    } else {
        format!("{:+.1}%", (new / old - 1.0) * 100.0)
    }
}

fn diff(a: &RunReport, b: &RunReport) {
    let (ma, mb) = (&a.manifest, &b.manifest);
    println!(
        "A: {} {} {} ({}) ranks={} steps={} wire={}",
        ma.case, ma.workflow, ma.mode, ma.exec, ma.ranks, ma.steps, ma.wire
    );
    println!(
        "B: {} {} {} ({}) ranks={} steps={} wire={}",
        mb.case, mb.workflow, mb.mode, mb.exec, mb.ranks, mb.steps, mb.wire
    );
    if ma != mb {
        println!("note: manifests differ — deltas compare different configurations");
    }

    println!(
        "\nstep time p95: {} -> {} ({})",
        fmt_secs(a.step_time_p95()),
        fmt_secs(b.step_time_p95()),
        pct(a.step_time_p95(), b.step_time_p95())
    );
    println!(
        "backpressure wait: {} -> {} ({})",
        fmt_secs(a.total_backpressure_wait()),
        fmt_secs(b.total_backpressure_wait()),
        pct(a.total_backpressure_wait(), b.total_backpressure_wait())
    );
    println!("events: {} -> {}", a.events.len(), b.events.len());

    let (aa, ab) = (aggregate(a), aggregate(b));
    let mut rows = Vec::new();
    for (name, va) in &aa {
        let Some(vb) = ab.get(name) else {
            rows.push(vec![
                name.clone(),
                agg_cell(va),
                "-".into(),
                "removed".into(),
            ]);
            continue;
        };
        let delta = match (va, vb) {
            (Agg::Counter(x), Agg::Counter(y)) => pct(*x as f64, *y as f64),
            (
                Agg::Gauge {
                    sum: xs,
                    ranks: xr,
                    avg: xa,
                },
                Agg::Gauge {
                    sum: ys,
                    ranks: yr,
                    avg: ya,
                },
            ) => pct(
                Agg::gauge_value(*xs, *xr, *xa),
                Agg::gauge_value(*ys, *yr, *ya),
            ),
            (Agg::Histogram { p95: x, .. }, Agg::Histogram { p95: y, .. }) => pct(*x, *y),
            _ => "type-changed".into(),
        };
        rows.push(vec![name.clone(), agg_cell(va), agg_cell(vb), delta]);
    }
    for (name, vb) in &ab {
        if !aa.contains_key(name) {
            rows.push(vec![name.clone(), "-".into(), agg_cell(vb), "new".into()]);
        }
    }
    if !rows.is_empty() {
        println!("\nmetric deltas (A -> B)");
        print!("{}", format_table(&["metric", "A", "B", "delta"], &rows));
    }

    // Fault-visibility digest: where the interesting events moved.
    for kind in [
        EventKind::FaultInjected,
        EventKind::CircuitBreakerOpen,
        EventKind::EngineSwitch,
        EventKind::CheckpointWrite,
        EventKind::EndpointCrash,
    ] {
        let ca = a.events_of(kind).count();
        let cb = b.events_of(kind).count();
        if ca + cb > 0 {
            println!("{}: {ca} -> {cb}", kind.as_str());
        }
    }
}

/// `nekstat summary <report> [--json]` — the human summary, or a
/// machine-readable `nekstat/summary/v1` document.
fn summary_cmd(args: &[String]) {
    let json_out = args.iter().any(|a| a == "--json");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        usage();
    };
    let r = load(path);
    if !json_out {
        summarize(&r);
        return;
    }
    let aggs = aggregate(&r);
    let m = &r.manifest;
    let mut o = String::from("{\n  \"schema\": ");
    json::push_str(&mut o, SUMMARY_SCHEMA);
    o.push_str(",\n  \"manifest\": {");
    for (i, (key, val)) in [
        ("case", &m.case),
        ("workflow", &m.workflow),
        ("mode", &m.mode),
        ("exec", &m.exec),
        ("sched", &m.sched),
        ("wire", &m.wire),
        ("machine", &m.machine),
        ("fault_plan", &m.fault_plan),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&format!("\"{key}\": "));
        json::push_str(&mut o, val);
    }
    o.push_str(&format!(
        ", \"ranks\": {}, \"endpoint_ranks\": {}, \"steps\": {}, \"trigger_every\": {}, \"pool_threads\": {}, \"pipeline_depth\": {}}}",
        m.ranks, m.endpoint_ranks, m.steps, m.trigger_every, m.pool_threads, m.pipeline_depth
    ));
    let n = r.series.len();
    let total: f64 = r.series.iter().map(|s| s.t_end - s.t_start).sum();
    let max = r
        .series
        .iter()
        .map(|s| s.t_end - s.t_start)
        .fold(0.0, f64::max);
    o.push_str(&format!(
        ",\n  \"series\": {{\"samples\": {n}, \"evicted\": {}, \"mean_s\": ",
        r.evicted_samples
    ));
    json::push_f64(&mut o, if n > 0 { total / n as f64 } else { 0.0 });
    o.push_str(", \"p95_s\": ");
    json::push_f64(&mut o, r.step_time_p95());
    o.push_str(", \"max_s\": ");
    json::push_f64(&mut o, max);
    o.push_str(", \"backpressure_wait_s\": ");
    json::push_f64(&mut o, r.total_backpressure_wait());
    o.push_str("},\n  \"metrics\": {");
    for (i, (name, agg)) in aggs.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push('\n');
        o.push_str("    ");
        json::push_str(&mut o, name);
        o.push_str(": ");
        match agg {
            Agg::Counter(c) => o.push_str(&format!("{{\"kind\": \"counter\", \"value\": {c}}}")),
            Agg::Gauge { sum, ranks, avg } => {
                o.push_str("{\"kind\": \"gauge\", \"value\": ");
                json::push_f64(&mut o, Agg::gauge_value(*sum, *ranks, *avg));
                o.push('}');
            }
            Agg::Histogram {
                count,
                p50,
                p90,
                p95,
                p99,
                max,
            } => {
                o.push_str(&format!("{{\"kind\": \"histogram\", \"count\": {count}"));
                for (key, v) in [
                    ("p50", *p50),
                    ("p90", *p90),
                    ("p95", *p95),
                    ("p99", *p99),
                    ("max", *max),
                ] {
                    o.push_str(&format!(", \"{key}\": "));
                    json::push_f64(&mut o, v);
                }
                o.push('}');
            }
        }
    }
    o.push_str("\n  },\n  \"sessions\": [");
    for (i, row) in session_table(&aggs).iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&format!(
            "{{\"id\": {}, \"frames_sent\": {}, \"bytes_sent\": {}, \"cache_hits\": {}, \"catchup_steps\": {}}}",
            row[0], row[1], row[2], row[3], row[4]
        ));
    }
    o.push_str(&format!("],\n  \"events\": {}\n}}\n", r.events.len()));
    print!("{o}");
}

/// `nekstat critical-path <report> [--json]` — name the dominant
/// (rank, phase) chain from the report's embedded critical block.
fn critical_path_cmd(args: &[String]) {
    let json_out = args.iter().any(|a| a == "--json");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        usage();
    };
    let r = load(path);
    let Some(c) = &r.critical else {
        eprintln!(
            "nekstat: {path} has no critical block (run with tracing enabled: \
             the workflow drivers embed it when --trace is on)"
        );
        std::process::exit(1);
    };
    if json_out {
        let mut o = String::new();
        telemetry::push_critical(&mut o, c);
        o.push('\n');
        print!("{o}");
        return;
    }
    println!(
        "critical path: {} across {} segments ({} steps analyzed)",
        fmt_secs(c.total),
        c.segments,
        c.steps.len()
    );
    if let Some(d) = c.dominant() {
        println!(
            "dominant: pid{} rank{} {} — {} ({:.1}% of the chain)",
            d.pid,
            d.rank,
            d.phase,
            fmt_secs(d.secs),
            if c.total > 0.0 { d.secs / c.total * 100.0 } else { 0.0 }
        );
    }
    if !c.contrib.is_empty() {
        let rows: Vec<Vec<String>> = c
            .contrib
            .iter()
            .map(|x| {
                vec![
                    x.pid.to_string(),
                    x.rank.to_string(),
                    x.phase.clone(),
                    fmt_secs(x.secs),
                    if c.total > 0.0 {
                        format!("{:.1}%", x.secs / c.total * 100.0)
                    } else {
                        "0.0%".into()
                    },
                ]
            })
            .collect();
        println!("\ncritical-path contributors");
        print!(
            "{}",
            format_table(&["pid", "rank", "phase", "time", "share"], &rows)
        );
    }
    if !c.steps.is_empty() {
        let rows: Vec<Vec<String>> = c
            .steps
            .iter()
            .map(|s| {
                let top = s
                    .contrib
                    .first()
                    .map(|x| format!("{} @ pid{} rank{}", x.phase, x.pid, x.rank))
                    .unwrap_or_else(|| "-".into());
                vec![
                    s.step.to_string(),
                    format!("{}..{}", fmt_secs(s.t_from), fmt_secs(s.t_to)),
                    fmt_secs(s.total),
                    top,
                ]
            })
            .collect();
        println!("\nper-step critical path");
        print!(
            "{}",
            format_table(&["step", "window", "total", "top contributor"], &rows)
        );
    }
    if !c.slack.is_empty() {
        let mut slack = c.slack.clone();
        slack.sort_by(|a, b| b.wait_s.total_cmp(&a.wait_s));
        let rows: Vec<Vec<String>> = slack
            .iter()
            .take(8)
            .map(|s| {
                vec![
                    s.pid.to_string(),
                    s.rank.to_string(),
                    fmt_secs(s.wait_s),
                ]
            })
            .collect();
        println!("\nper-rank slack (blocking wait off the critical path, top {})", rows.len());
        print!("{}", format_table(&["pid", "rank", "wait"], &rows));
    }
}

/// Sum every counter whose rank-stripped base name equals `base` over a
/// merged live-metric state.
fn live_counter_sum(state: &BTreeMap<String, json::Value>, base: &str) -> u64 {
    state
        .iter()
        .filter(|(name, _)| base_name(name).0 == base)
        .filter_map(|(_, v)| {
            (v.get("kind")?.as_str()? == "counter").then(|| v.get("value")?.as_u64())?
        })
        .sum()
}

/// `nekstat --follow <host:port> [--json] [--max-snapshots N]` — attach
/// a live telemetry session and print one line per delta snapshot.
fn follow_cmd(args: &[String]) {
    let json_out = args.iter().any(|a| a == "--json");
    let max_snapshots: Option<u64> = args
        .iter()
        .position(|a| a == "--max-snapshots")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let Some(addr) = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--max-snapshots")
        })
        .map(|(_, a)| a)
    else {
        usage();
    };
    let mut client = transport::FollowClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("nekstat: cannot attach to {addr}: {e}");
        std::process::exit(1);
    });
    let mut state: BTreeMap<String, json::Value> = BTreeMap::new();
    let mut received = 0u64;
    loop {
        let snap = match client.next_snapshot(std::time::Duration::from_secs(30)) {
            Ok(Some(s)) => s,
            Ok(None) => {
                if !json_out {
                    println!("stream ended after {received} snapshots");
                }
                return;
            }
            Err(e) => {
                eprintln!("nekstat: follow stream error: {e}");
                std::process::exit(1);
            }
        };
        received += 1;
        if json_out {
            println!("{}", snap.json);
        } else {
            let doc = json::parse(&snap.json).unwrap_or_else(|e| {
                eprintln!("nekstat: malformed snapshot: {e}");
                std::process::exit(1);
            });
            let mut changed = 0usize;
            if let Some(json::Value::Obj(metrics)) = doc.get("metrics").cloned() {
                changed = metrics.len();
                state.extend(metrics);
            }
            println!(
                "snap {:>4} ({}, {} changed) | steps={} frames={} KiB={:.1} credit_stalls={} retries={}",
                snap.seq,
                if snap.seq == 0 { "full" } else { "delta" },
                changed,
                live_counter_sum(&state, "staging/steps"),
                live_counter_sum(&state, "staging/frames_sent"),
                live_counter_sum(&state, "staging/bytes_sent") as f64 / 1024.0,
                live_counter_sum(&state, "staging/credit_stalls"),
                live_counter_sum(&state, "transport/retries"),
            );
        }
        if max_snapshots.is_some_and(|m| received >= m) {
            if !json_out {
                println!("detaching after {received} snapshots (run continues unharmed)");
            }
            return;
        }
    }
}
