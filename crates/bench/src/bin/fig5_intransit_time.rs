//! **Figure 5** — mean time per timestep on the NekRS-SENSEI simulation
//! nodes in the in-transit RBC workflow, weak scaling (§4.2, JUWELS
//! Booster).
//!
//! Paper setup: RBC at increasing node counts (constant load per node),
//! sim:endpoint node ratio 4:1, ADIOS2-SST over UCX, measurement points
//! {No Transport, Checkpointing, Catalyst} — all endpoint-side, so the
//! simulation's time per step should be nearly flat in both the node count
//! (good weak scaling) and the endpoint mode (small in-transit overhead).

use bench_harness::{
    cases, fmt_secs, format_table, maybe_write_csv, maybe_write_report, maybe_write_trace,
    HarnessArgs,
};
use nek_sensei::{run_intransit, EndpointMode};

fn main() {
    let args = HarnessArgs::parse();
    let sim_rank_counts: Vec<usize> = if args.full {
        vec![16, 32, 64, 128]
    } else {
        vec![4, 8, 16]
    };
    let steps = args.steps.unwrap_or(30);
    let trigger = args.trigger.unwrap_or(10);

    // Weak scaling holds the per-rank load fixed: 9 elements/rank at order
    // 3 (576 nodes). A production RBC run puts ~4e5 grid points on each
    // A100; derate throughputs by the ratio so per-step times match the
    // paper's regime (see DESIGN.md).
    let (machine, derate) = cases::juwels_derated();
    println!("throughput derating {derate:.0}x (paper-regime per-rank load)");

    let mut rows = Vec::new();
    let mut by_mode: Vec<(EndpointMode, Vec<f64>)> = Vec::new();
    for mode in [
        EndpointMode::NoTransport,
        EndpointMode::Checkpointing,
        EndpointMode::Catalyst,
    ] {
        let mut times = Vec::new();
        for &sim_ranks in &sim_rank_counts {
            let mut cfg = cases::intransit_config(sim_ranks, steps, trigger, machine.clone(), mode);
            cfg.sched = args.sched_mode();
            cfg.wire = args.wire_kind();
            cfg.trace = args.trace_out.is_some();
            cfg.telemetry = args.telemetry();
            let report = run_intransit(&cfg);
            println!(
                "  {:<13} sim-ranks={sim_ranks:<4} endpoint-ranks={:<3} mean-step={}",
                mode.label(),
                report.endpoint_ranks,
                fmt_secs(report.sim.mean_step_time)
            );
            let cell = format!(
                "fig5_{}_{sim_ranks}ranks",
                mode.label().to_lowercase().replace(' ', "_")
            );
            maybe_write_trace(&args, &cell, &report.traces, report.phases.as_ref());
            maybe_write_report(&args, &cell, report.run_report.as_ref());
            rows.push(vec![
                mode.label().to_string(),
                sim_ranks.to_string(),
                report.endpoint_ranks.to_string(),
                format!("{:.6}", report.sim.mean_step_time),
                format!("{:.4}", report.sim.time_to_solution),
                report.endpoint_steps.to_string(),
            ]);
            times.push(report.sim.mean_step_time);
        }
        by_mode.push((mode, times));
    }

    let headers = [
        "config",
        "sim_ranks",
        "endpoint_ranks",
        "mean_step_time_s",
        "time_to_solution_s",
        "endpoint_steps",
    ];
    println!("\nFigure 5 — mean time per timestep on simulation ranks (JUWELS model)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fig5_intransit_time", &headers, &rows);

    let base = &by_mode[0].1;
    println!("shape: weak scaling flatness (max/min over rank counts):");
    for (mode, times) in &by_mode {
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        println!("  {:<13} {:.2}× (paper: ≈flat)", mode.label(), max / min);
    }
    println!("shape: endpoint-mode overhead vs No Transport at the largest scale:");
    let last = base.len() - 1;
    for (mode, times) in &by_mode[1..] {
        println!(
            "  {:<13} {:+.1}% (paper: small)",
            mode.label(),
            (times[last] / base[last] - 1.0) * 100.0
        );
    }
}
