//! **Figure 2** — time-to-solution of the pb146 pebble-bed case across
//! rank counts for the Catalyst, Checkpointing and Original
//! configurations (§4.1, Polaris).
//!
//! Paper setup: 3000 timesteps, trigger every 100, on 280/560/1120 ranks
//! (70/140/280 Polaris nodes). Default here: rank counts scaled down 40×
//! and steps 50× (60 steps, trigger 10) so the sweep runs on a laptop;
//! `--full` reproduces the paper's counts. Times are virtual seconds from
//! the Polaris machine model driven by the real reduced-scale run.
//!
//! Expected shape (paper): strong scaling (time falls with ranks);
//! Original < Checkpointing ≲ Catalyst, with Catalyst bearing a slight
//! overhead over Checkpointing.

use bench_harness::{
    cases, fmt_secs, format_table, maybe_write_csv, maybe_write_report, maybe_write_trace,
    run_insitu_cell, HarnessArgs,
};
use nek_sensei::InSituMode;

fn main() {
    let args = HarnessArgs::parse();
    let sweep = cases::pb146_strong_scaling(&args);
    let (paper_ranks, ranks) = (sweep.paper_ranks.clone(), sweep.ranks.clone());
    println!(
        "pb146: {} fluid elements (of {}), order {}, {} steps, trigger every {}, throughput derating {:.0}x, exec {}, sched {}",
        sweep.case.n_fluid_elems(),
        sweep.params.elems.iter().product::<usize>(),
        sweep.params.order,
        sweep.steps,
        sweep.trigger,
        sweep.derate,
        args.exec_mode().label(),
        args.sched_mode().label()
    );

    let mut rows = Vec::new();
    let mut by_mode: Vec<(InSituMode, Vec<f64>)> = Vec::new();
    for mode in [
        InSituMode::Original,
        InSituMode::Checkpointing,
        InSituMode::Catalyst,
    ] {
        let mut times = Vec::new();
        for (&paper_r, &r) in paper_ranks.iter().zip(&ranks) {
            let mut cfg = cases::insitu_config(&sweep, r, mode);
            cfg.exec = args.exec_mode();
            cfg.sched = args.sched_mode();
            cfg.trace = args.trace_out.is_some();
            cfg.telemetry = args.telemetry();
            let cell = format!("fig2_{}_{r}ranks", mode.label().to_lowercase());
            let report = run_insitu_cell(&args, &cell, cfg);
            println!(
                "  {:<13} paper-ranks={paper_r:<5} ranks={r:<4} time={}",
                mode.label(),
                fmt_secs(report.metrics.time_to_solution)
            );
            maybe_write_trace(&args, &cell, &report.traces, report.phases.as_ref());
            maybe_write_report(&args, &cell, report.run_report.as_ref());
            let t = &report.metrics.totals;
            let per_rank = |x: f64| x / r as f64;
            rows.push(vec![
                mode.label().to_string(),
                paper_r.to_string(),
                r.to_string(),
                format!("{:.4}", report.metrics.time_to_solution),
                format!("{:.6}", report.metrics.mean_step_time),
                format!("{:.4}", per_rank(t.time_gpu_compute)),
                format!("{:.4}", per_rank(t.time_comm)),
                format!(
                    "{:.4}",
                    per_rank(t.time_io + t.time_xfer + t.time_host_compute)
                ),
            ]);
            times.push(report.metrics.time_to_solution);
        }
        by_mode.push((mode, times));
    }

    let headers = [
        "config",
        "paper_ranks",
        "ranks",
        "time_to_solution_s",
        "mean_step_s",
        "gpu_s/rank",
        "comm_s/rank",
        "insitu_io_s/rank",
    ];
    println!("\nFigure 2 — time-to-solution (virtual seconds, Polaris model)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fig2_time_to_solution", &headers, &rows);

    // Shape verdicts against the paper.
    let find = |m: InSituMode| {
        by_mode
            .iter()
            .find(|(mm, _)| *mm == m)
            .map(|(_, t)| t.clone())
            .expect("mode ran")
    };
    let orig = find(InSituMode::Original);
    let chk = find(InSituMode::Checkpointing);
    let cat = find(InSituMode::Catalyst);
    let strong_scaling = orig.windows(2).all(|w| w[1] < w[0]);
    let order_holds = orig
        .iter()
        .zip(&chk)
        .zip(&cat)
        .all(|((o, c), k)| o < c && c <= k);
    println!("shape: strong scaling (time falls with ranks): {strong_scaling}");
    println!("shape: Original < Checkpointing <= Catalyst at every scale: {order_holds}");
    for i in 0..orig.len() {
        println!(
            "  ranks {:>5}: Catalyst overhead vs Checkpointing {:+.1}%, vs Original {:+.1}%",
            paper_ranks[i],
            (cat[i] / chk[i] - 1.0) * 100.0,
            (cat[i] / orig[i] - 1.0) * 100.0
        );
    }
}
