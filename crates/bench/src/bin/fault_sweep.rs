//! **Fault sweep** — the robustness companion to Figures 5/6: the
//! in-transit RBC pipeline under a grid of injected staging faults
//! (frame drop rate × endpoint crash step), reporting per cell how many
//! triggers were delivered in transit, degraded to the BP file engine,
//! or lost outright.
//!
//! Two invariants are checked on every run:
//!
//! 1. **Graceful degradation** — when the endpoint crashes mid-run, every
//!    trigger after the circuit breaker opens is parked to the file
//!    engine and reads back; the simulation itself never aborts.
//! 2. **Determinism** — the crash cell is executed twice with the same
//!    seed and must produce bit-identical endpoint delivery logs.

use bench_harness::{format_table, maybe_write_csv, HarnessArgs};
use commsim::{EndpointCrash, FaultPlan, LinkFaultSpec, MachineModel};
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig, InTransitReport};
use sem::cases::{rbc, CaseParams};
use transport::{BpFileReader, QueuePolicy, StagingLink, WriterConfig};

fn sweep_config(steps: usize, trigger: u64, faults: FaultPlan) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps,
        trigger_every: trigger,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Checkpointing,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (64, 48),
        output_dir: None,
        faults,
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

fn plan(seed: u64, drop_prob: f64, crash_step: Option<u64>) -> FaultPlan {
    let mut plan = FaultPlan::with_link(
        seed,
        LinkFaultSpec {
            drop_prob,
            ..LinkFaultSpec::default()
        },
    );
    if let Some(at_step) = crash_step {
        plan.crashes.push(EndpointCrash {
            endpoint: 0,
            at_step,
        });
    }
    plan
}

/// Count the steps parked in the fallback BP files and verify they read
/// back cleanly.
fn parked_on_disk(dir: &std::path::Path, producers: usize) -> u64 {
    let mut total = 0;
    for producer in 0..producers {
        let path = dir.join(format!("producer_{producer:05}.bp4l"));
        if !path.exists() {
            continue;
        }
        let mut reader = BpFileReader::open(&path).expect("fallback BP file");
        while let Some(_step) = reader.next_step().expect("valid BP frame") {
            total += 1;
        }
    }
    total
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fault-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_cell(steps: usize, trigger: u64, faults: FaultPlan, tag: &str) -> (InTransitReport, u64) {
    let dir = scratch(tag);
    let mut cfg = sweep_config(steps, trigger, faults);
    cfg.fallback_dir = Some(dir.clone());
    let report = run_intransit(&cfg);
    let parked = parked_on_disk(&dir, cfg.sim_ranks);
    let _ = std::fs::remove_dir_all(&dir);
    (report, parked)
}

fn main() {
    let args = HarnessArgs::parse();
    let steps = args.steps.unwrap_or(12);
    let trigger = args.trigger.unwrap_or(2);
    let triggers_per_rank = steps as u64 / trigger.max(1);
    if triggers_per_rank == 0 {
        eprintln!(
            "--steps {steps} with trigger every {trigger} yields no transport triggers; \
             nothing to sweep"
        );
        return;
    }
    let seed = 2023;

    println!(
        "in-transit RBC under injected staging faults: 4 sim ranks, 1 endpoint, \
         {steps} steps, trigger every {trigger} ({triggers_per_rank} triggers/rank)\n"
    );

    let drop_rates = [0.0, 0.1, 0.3];
    let crash_steps = [None, Some(trigger + 1)];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for crash in crash_steps {
        for drop_prob in drop_rates {
            let tag = format!("d{}c{}", (drop_prob * 100.0) as u32, crash.unwrap_or(0));
            let (r, parked_files) = run_cell(steps, trigger, plan(seed, drop_prob, crash), &tag);
            let d = r.degradation;
            assert_eq!(
                parked_files, d.parked_steps,
                "every parked trigger must read back from the file engine"
            );
            let total = triggers_per_rank * r.sim_ranks as u64;
            assert_eq!(
                d.staged_steps + d.lost_steps + d.parked_steps,
                total,
                "every trigger accounted for"
            );
            rows.push(vec![
                format!("{drop_prob:.2}"),
                crash.map_or("-".into(), |s| s.to_string()),
                d.staged_steps.to_string(),
                d.lost_steps.to_string(),
                d.parked_steps.to_string(),
                d.first_switch_step.map_or("-".into(), |s| s.to_string()),
                d.retries.to_string(),
                r.endpoint_steps.to_string(),
                r.endpoint_partial_steps.to_string(),
                r.endpoint_crashes.to_string(),
            ]);
            cells.push((drop_prob, crash, d, parked_files, r.endpoint_crashes));
        }
    }

    let headers = [
        "drop",
        "crash@",
        "staged",
        "lost",
        "parked",
        "switch@",
        "retries",
        "ep-steps",
        "ep-partial",
        "ep-crashes",
    ];
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fault_sweep", &headers, &rows);

    // Machine-readable recovery-stats summary for CI (`--json-out FILE`).
    if let Some(path) = &args.json_out {
        let mut out = String::new();
        out.push_str("{\"schema\": \"nekstat/fault-sweep/v1\", ");
        out.push_str(&format!(
            "\"seed\": {seed}, \"steps\": {steps}, \"trigger_every\": {trigger}, \
             \"triggers_per_rank\": {triggers_per_rank}, \"cells\": ["
        ));
        for (i, (drop_prob, crash, d, parked_files, ep_crashes)) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"drop_prob\": {drop_prob}, \"crash_step\": {}, \
                 \"staged\": {}, \"lost\": {}, \"parked\": {}, \
                 \"parked_readback\": {}, \"switch_step\": {}, \
                 \"retries\": {}, \"endpoint_crashes\": {}, \"degraded\": {}}}",
                crash.map_or("null".into(), |s| s.to_string()),
                d.staged_steps,
                d.lost_steps,
                d.parked_steps,
                parked_files,
                d.first_switch_step.map_or("null".into(), |s| s.to_string()),
                d.retries,
                ep_crashes,
                d.degraded(),
            ));
        }
        out.push_str("]}");
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, out).expect("write JSON summary");
        println!("wrote {}", path.display());
    }

    // Invariant 1: the crash cell degrades without losing triggers.
    let crash_at = trigger + 1;
    let (r, parked_files) = run_cell(steps, trigger, plan(seed, 0.0, Some(crash_at)), "inv1");
    let d = r.degradation;
    assert_eq!(r.endpoint_crashes, 1, "the scheduled crash must fire");
    assert!(d.degraded(), "producers must fall back to the file engine");
    assert_eq!(d.lost_steps, 0, "a crash is a disconnect: nothing is lost");
    assert_eq!(parked_files, d.parked_steps);
    assert!(parked_files > 0, "post-crash triggers must be parked");
    println!(
        "\ncrash at step {crash_at}: breaker opened, switch at step {}, \
         {} triggers staged in transit, {} parked to BP files (0 lost)",
        d.first_switch_step.expect("switch step"),
        d.staged_steps,
        d.parked_steps,
    );

    // Invariant 2: same plan + same seed => identical delivery logs.
    let faults = plan(seed, 0.25, Some(crash_at));
    let (first, _) = run_cell(steps, trigger, faults.clone(), "det-a");
    let (second, _) = run_cell(steps, trigger, faults, "det-b");
    assert_eq!(
        first.endpoint_delivered, second.endpoint_delivered,
        "fault injection must be deterministic under a fixed seed"
    );
    println!(
        "determinism: two seed-{seed} runs delivered identical step logs {:?}",
        first.endpoint_delivered
    );
}
