//! **§4.1 storage-economy comparison** — total bytes written by the
//! Catalyst configuration (rendered images) vs the Checkpointing
//! configuration (raw field dumps) over a full run.
//!
//! Paper numbers: 6.5 MB of images vs 19 GB of checkpoints — roughly three
//! orders of magnitude. The reduced-scale gap is smaller in absolute terms
//! (dump size scales with mesh size, image size does not) but the binary
//! also extrapolates the dump side to the paper's mesh resolution to show
//! the full gap.

use bench_harness::{format_table, maybe_write_csv, HarnessArgs};
use commsim::MachineModel;
use memtrack::human_bytes;
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let ranks = 8;
    let steps = args.steps.unwrap_or(60);
    let trigger = args.trigger.unwrap_or(10);
    let mut params = CaseParams::pb146_default();
    params.elems = [4, 4, 16];
    let case = pb146(&params, 146);

    let mut rows = Vec::new();
    let mut written = Vec::new();
    for mode in [InSituMode::Checkpointing, InSituMode::Catalyst] {
        let report = run_insitu(&InSituConfig {
            case: case.clone(),
            ranks,
            steps,
            trigger_every: trigger,
            machine: MachineModel::polaris(),
            image_size: (800, 600),
            mode,
            exec: args.exec_mode(),
            sched: args.sched_mode(),
            faults: commsim::FaultPlan::none(),
            output_dir: args.out.clone().map(|d| d.join(mode.label())),
            trace: false,
            telemetry: false,
            recovery: Default::default(),
        });
        rows.push(vec![
            mode.label().to_string(),
            report.files_written.to_string(),
            report.bytes_written.to_string(),
            human_bytes(report.bytes_written),
        ]);
        written.push(report.bytes_written);
    }

    let headers = ["config", "files", "bytes", "human"];
    println!("Storage written over {steps} steps (trigger every {trigger}, {ranks} ranks)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "storage_economy", &headers, &rows);

    let ratio = written[0] as f64 / written[1].max(1) as f64;
    println!("measured: Checkpointing / Catalyst = {ratio:.2}× at this mesh size");

    // Extrapolate the checkpoint side to the paper's pb146 resolution
    // (≈350k spectral elements at N=7 → 1.8e8 grid points) with the same
    // trigger count; images stay the size they are.
    let paper_points = 350_000.0 * 512.0;
    let these_points = (case.n_fluid_elems() * 64) as f64;
    let paper_chk = written[0] as f64 * paper_points / these_points;
    let paper_ratio = paper_chk / written[1].max(1) as f64;
    println!(
        "extrapolated to paper resolution: checkpoints ≈ {} vs images {} → {:.0}× (~{:.0} orders of magnitude; paper: 19 GB vs 6.5 MB ≈ 3000×)",
        human_bytes(paper_chk as u64),
        human_bytes(written[1]),
        paper_ratio,
        paper_ratio.log10().round()
    );
}
