//! `staging_bench` — 1-writer/N-consumer staging fan-out benchmark.
//!
//! Drives one simulation writer stream into a [`transport::StagingService`]
//! fanned out to N consumer sessions and reports measured throughput and
//! frame-cache hit rate. Two shapes:
//!
//! * **Single process** (default, `--role all`): writer world, staging
//!   service, and N local consumer sessions in one process, over the
//!   in-process channel wire or loopback TCP (`--wire tcp`).
//! * **Multi process** (`--role writer|staging|consumer`): each tier is
//!   its own OS process connected over real TCP sockets — the shape CI
//!   runs to prove the wire format is process-portable. The staging role
//!   writes its bound ports to `--port-file` as `data=<port>` /
//!   `consumer=<port>` lines; writers `--connect` to the data port and
//!   consumers to the consumer port.
//!
//! With `--report-out DIR` the staging side emits a `nekstat`-readable
//! RunReport (workflow `staging`) carrying the `staging/*` counters.

use commsim::{run_ranks_with_state, Comm, FaultPlan, MachineModel, TelemetryHub};
use insitu::AnalysisAdaptor as _;
use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use transport::wire::loopback_listener;
use transport::{
    ConsumerClient, QueuePolicy, SessionSpec, SstWriter, StagingLink, StagingNetwork,
    StagingReport, StagingService, TransportAnalysis, WireKind, WriterConfig,
};

const DRAIN_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Clone)]
struct Args {
    wire: WireKind,
    consumers: usize,
    steps: u64,
    step_delay: Duration,
    role: String,
    connect: Option<String>,
    port_file: Option<PathBuf>,
    report_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        wire: WireKind::from_env(),
        consumers: 3,
        steps: 6,
        step_delay: Duration::ZERO,
        role: "all".into(),
        connect: None,
        port_file: None,
        report_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--wire" => {
                if let Some(v) = it.next() {
                    match WireKind::parse(&v) {
                        Some(w) => args.wire = w,
                        None => eprintln!("warning: unknown --wire '{v}' (channel|tcp)"),
                    }
                }
            }
            "--consumers" => {
                args.consumers = it.next().and_then(|v| v.parse().ok()).unwrap_or(3)
            }
            "--steps" => args.steps = it.next().and_then(|v| v.parse().ok()).unwrap_or(6),
            "--step-delay-ms" => {
                args.step_delay =
                    Duration::from_millis(it.next().and_then(|v| v.parse().ok()).unwrap_or(0))
            }
            "--role" => args.role = it.next().unwrap_or_else(|| "all".into()),
            "--connect" => args.connect = it.next(),
            "--port-file" => args.port_file = it.next().map(Into::into),
            "--report-out" => args.report_out = it.next().map(Into::into),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --wire channel|tcp | --consumers N | --steps N | --step-delay-ms N | --report-out DIR | --role all|writer|staging|consumer | --connect HOST:PORT | --port-file FILE"
                );
                std::process::exit(0);
            }
            other => eprintln!("warning: ignoring unknown flag '{other}'"),
        }
    }
    args
}

/// One hex element per producer rank, same shape the staging tests use.
fn block(rank: usize, nranks: usize) -> MultiBlock {
    let z0 = rank as f64;
    let mut g = UnstructuredGrid::new();
    for z in [z0, z0 + 1.0] {
        for y in [0.0, 1.0] {
            for x in [0.0, 1.0] {
                g.add_point([x, y, z]);
            }
        }
    }
    g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
    g.add_point_data(DataArray::scalars_f64(
        "pressure",
        (0..8).map(|i| i as f64 + 100.0 * rank as f64).collect(),
    ))
    .unwrap();
    MultiBlock::local(rank, nranks, g)
}

/// Drive `writers` through `steps` triggered steps on their own sim
/// world. A nonzero `step_delay` sleeps real time between steps so a
/// live follower has a running process to watch (the virtual clock is
/// untouched — pacing changes wall time only).
fn drive_writers(
    writers: Vec<SstWriter>,
    steps: u64,
    step_delay: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, writer| {
            let mut analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
            for step in 1..=steps {
                if !step_delay.is_zero() {
                    comm.external_wait(|| std::thread::sleep(step_delay));
                }
                let mut da = insitu::data_adaptor::StaticDataAdaptor::new(
                    "mesh",
                    block(comm.rank(), comm.size()),
                    step as f64 * 0.1,
                    step,
                );
                analysis.execute(comm, &mut da).unwrap();
            }
        });
    })
}

/// Run `service` on a fresh single-rank world with telemetry attached.
fn run_service(service: StagingService, hub: TelemetryHub) -> StagingReport {
    run_ranks_with_state(
        MachineModel::test_tiny(),
        vec![service],
        move |comm: &mut Comm, mut s| {
            comm.enable_telemetry(&hub, 0);
            s.run(comm).expect("staging service")
        },
    )
    .remove(0)
}

fn park_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nek_staging_bench_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("park dir");
    dir
}

fn write_report(args: &Args, report: &StagingReport, hub: &TelemetryHub, endpoint_sessions: usize) {
    let Some(dir) = &args.report_out else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let run_report = telemetry::RunReport::collect(
        telemetry::Manifest {
            case: "staging-fanout".into(),
            workflow: "staging".into(),
            mode: "fanout".into(),
            exec: "concurrent".into(),
            sched: commsim::SchedMode::default().label().into(),
            wire: args.wire.label().into(),
            ranks: 1,
            endpoint_ranks: 1,
            steps: report.steps,
            trigger_every: 1,
            machine: "test_tiny".into(),
            fault_plan: "none".into(),
            pool_threads: rayon::pool::current_threads(),
            pipeline_depth: endpoint_sessions,
        },
        hub,
        Vec::new(),
        telemetry::MemorySummary::default(),
    );
    let path = dir.join("staging_bench.report.json");
    if std::fs::write(&path, run_report.to_json()).is_ok() {
        println!("wrote {}", path.display());
    }
}

fn print_summary(report: &StagingReport, elapsed: Duration) {
    let frames = report.frames_sent();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "staging: {} steps, {} sessions, {} frames fanned out ({:.1} frames/s wall, {:.1} KiB received)",
        report.steps,
        report.sessions.len(),
        frames,
        frames as f64 / secs,
        report.bytes_received as f64 / 1024.0,
    );
    println!(
        "cache: {} hits / {} misses (hit rate {:.1}%)",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate() * 100.0,
    );
    for s in &report.sessions {
        println!(
            "  session {}: {} frames, {} B, {} cache hits, {} catch-up steps{}",
            s.id,
            s.frames_sent,
            s.bytes_sent,
            s.cache_hits,
            s.catchup_steps,
            if s.detached { " (detached)" } else { "" },
        );
    }
}

/// Single process: writer world + staging service + N local sessions.
fn run_all(args: &Args) {
    let dir = park_dir("all");
    let (writers, mut readers) = StagingNetwork::build_wired(
        1,
        1,
        16,
        StagingLink::test_tiny(),
        QueuePolicy::Block,
        FaultPlan::none(),
        WriterConfig::default(),
        args.wire,
    )
    .expect("wire setup");
    let service = StagingService::new(readers.remove(0), 1, &dir, 32);
    let handle = service.handle();
    let drains: Vec<_> = (0..args.consumers.max(1))
        .map(|_| {
            let mut client = handle.attach_local(SessionSpec::default(), 4);
            std::thread::spawn(move || client.drain(DRAIN_TIMEOUT).expect("drain"))
        })
        .collect();
    let hub = TelemetryHub::default();
    let start = Instant::now();
    let sim = drive_writers(writers, args.steps, args.step_delay);
    let report = run_service(service, hub.clone());
    sim.join().unwrap();
    let elapsed = start.elapsed();
    for (i, d) in drains.into_iter().enumerate() {
        let frames = d.join().unwrap();
        assert_eq!(
            frames.len() as u64,
            report.steps,
            "consumer {i} missed frames"
        );
    }
    print_summary(&report, elapsed);
    write_report(args, &report, &hub, args.consumers);
    assert!(
        report.cache_hit_rate() > 0.0,
        "fan-out produced no cache hits"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Multi-process writer tier: stream `--steps` steps to the staging
/// service's data port.
fn run_writer(args: &Args) {
    let addr = args.connect.clone().expect("--connect HOST:PORT required");
    let writer = StagingNetwork::tcp_writer(
        &addr,
        0,
        StagingLink::test_tiny(),
        QueuePolicy::Block,
        FaultPlan::none(),
        WriterConfig::default(),
    )
    .expect("connect to staging data port");
    drive_writers(vec![writer], args.steps, args.step_delay)
        .join()
        .unwrap();
    println!("writer: {} steps sent to {addr}", args.steps);
}

/// Multi-process staging tier: bind the data + consumer ports, publish
/// them via `--port-file`, serve until the writer stream ends.
fn run_staging(args: &Args) {
    // The split-process tiers always talk over real sockets; record that
    // in the report regardless of `NEK_WIRE`/`--wire`.
    let args = Args {
        wire: WireKind::Tcp,
        ..args.clone()
    };
    let args = &args;
    let dir = park_dir("staging");
    let (data_listener, data_port) = loopback_listener().expect("bind data port");
    let (consumer_listener, consumer_port) = loopback_listener().expect("bind consumer port");
    if let Some(path) = &args.port_file {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("data={data_port}\nconsumer={consumer_port}\n"))
            .expect("write port file");
        std::fs::rename(&tmp, path).expect("publish port file");
    }
    println!("staging: data port {data_port}, consumer port {consumer_port}");
    let reader = StagingNetwork::tcp_reader(data_listener, vec![0], 16, FaultPlan::none());
    let mut service = StagingService::new(reader, 1, &dir, 32);
    let hub = TelemetryHub::default();
    // Follow sessions (`nekstat --follow`) share the consumer port.
    service.set_live_hub(hub.clone());
    service.listen_consumers(consumer_listener);
    let start = Instant::now();
    let report = run_service(service, hub.clone());
    print_summary(&report, start.elapsed());
    write_report(args, &report, &hub, report.sessions.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// Multi-process consumer tier: attach one session and drain it.
fn run_consumer(args: &Args) {
    let addr = args.connect.clone().expect("--connect HOST:PORT required");
    let mut client =
        ConsumerClient::connect(&addr, &SessionSpec::default(), 4).expect("connect to staging");
    let frames = client.drain(DRAIN_TIMEOUT).expect("drain");
    let hits = frames.iter().filter(|f| f.cache_hit).count();
    println!(
        "consumer: {} frames from {addr} ({} cache hits)",
        frames.len(),
        hits
    );
    assert!(!frames.is_empty(), "consumer saw no frames");
}

fn main() {
    let args = parse_args();
    match args.role.as_str() {
        "all" => run_all(&args),
        "writer" => run_writer(&args),
        "staging" => run_staging(&args),
        "consumer" => run_consumer(&args),
        other => {
            eprintln!("unknown --role '{other}' (all|writer|staging|consumer)");
            std::process::exit(2);
        }
    }
}
