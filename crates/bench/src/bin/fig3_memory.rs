//! **Figure 3** — memory usage of the pb146 runs for the Catalyst and
//! Checkpointing configurations (§4.1, Polaris).
//!
//! Paper metric: aggregate CPU-memory high-water mark across all MPI
//! ranks; the observation is that Catalyst sits ≈25% above Checkpointing
//! because of the GPU→CPU staging plus the VTK/rendering copies.

use bench_harness::{format_table, maybe_write_csv, HarnessArgs};
use commsim::MachineModel;
use memtrack::human_bytes;
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let scale = if args.full { 1 } else { args.scale.unwrap_or(40) };
    let paper_ranks = [280usize, 560, 1120];
    let ranks: Vec<usize> = paper_ranks.iter().map(|&r| (r / scale).max(2)).collect();
    let steps = args.steps.unwrap_or(if args.full { 3000 } else { 60 });
    let trigger = args.trigger.unwrap_or(if args.full { 100 } else { 10 });

    let nz = *ranks.iter().max().expect("nonempty");
    let mut params = CaseParams::pb146_default();
    params.elems = [4, 4, nz.max(8)];
    let case = pb146(&params, 146);
    // Same throughput derating as fig2 (memory is unaffected by rates but
    // the runs should be the same runs).
    let paper_nodes = 350_000.0 * 512.0;
    let our_nodes = (case.n_fluid_elems() * (params.order + 1).pow(3)) as f64;
    let derate = ((paper_nodes / our_nodes) * (ranks[0] as f64 / paper_ranks[0] as f64)).max(1.0);
    let machine = MachineModel::polaris().derate_throughput(derate);

    let mut rows = Vec::new();
    let mut mems: Vec<(InSituMode, Vec<u64>)> = Vec::new();
    for mode in [InSituMode::Checkpointing, InSituMode::Catalyst] {
        let mut per_scale = Vec::new();
        for (&paper_r, &r) in paper_ranks.iter().zip(&ranks) {
            let report = run_insitu(&InSituConfig {
                case: case.clone(),
                ranks: r,
                steps,
                trigger_every: trigger,
                machine: machine.clone(),
                image_size: (800, 600),
                mode,
                output_dir: None,
                trace: false,
            });
            let mem = report.memory();
            println!(
                "  {:<13} paper-ranks={paper_r:<5} ranks={r:<4} host-aggregate-peak={}",
                mode.label(),
                human_bytes(mem.host_aggregate_peak)
            );
            rows.push(vec![
                mode.label().to_string(),
                paper_r.to_string(),
                r.to_string(),
                mem.host_aggregate_peak.to_string(),
                mem.host_max_rank_peak.to_string(),
                mem.gpu_aggregate_peak.to_string(),
            ]);
            per_scale.push(mem.host_aggregate_peak);
        }
        mems.push((mode, per_scale));
    }

    let headers = [
        "config",
        "paper_ranks",
        "ranks",
        "host_aggregate_peak_B",
        "host_max_rank_peak_B",
        "gpu_aggregate_peak_B",
    ];
    println!("\nFigure 3 — memory high-water marks (tracking accountants)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fig3_memory", &headers, &rows);

    let chk = &mems[0].1;
    let cat = &mems[1].1;
    println!("shape: Catalyst overhead over Checkpointing (paper: ≈ +25%):");
    for i in 0..chk.len() {
        println!(
            "  ranks {:>5}: {:+.1}%",
            paper_ranks[i],
            (cat[i] as f64 / chk[i] as f64 - 1.0) * 100.0
        );
    }
}
