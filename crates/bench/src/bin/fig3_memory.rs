//! **Figure 3** — memory usage of the pb146 runs for the Catalyst and
//! Checkpointing configurations (§4.1, Polaris).
//!
//! Paper metric: aggregate CPU-memory high-water mark across all MPI
//! ranks; the observation is that Catalyst sits ≈25% above Checkpointing
//! because of the GPU→CPU staging plus the VTK/rendering copies.

use bench_harness::{cases, format_table, maybe_write_csv, maybe_write_report, HarnessArgs};
use memtrack::human_bytes;
use nek_sensei::{run_insitu, InSituMode};

fn main() {
    let args = HarnessArgs::parse();
    // Same sweep as fig2 (memory is unaffected by rates but the runs
    // should be the same runs).
    let sweep = cases::pb146_strong_scaling(&args);
    let (paper_ranks, ranks) = (sweep.paper_ranks.clone(), sweep.ranks.clone());

    let mut rows = Vec::new();
    let mut mems: Vec<(InSituMode, Vec<u64>)> = Vec::new();
    for mode in [InSituMode::Checkpointing, InSituMode::Catalyst] {
        let mut per_scale = Vec::new();
        for (&paper_r, &r) in paper_ranks.iter().zip(&ranks) {
            let mut cfg = cases::insitu_config(&sweep, r, mode);
            cfg.exec = args.exec_mode();
            cfg.sched = args.sched_mode();
            cfg.telemetry = args.telemetry();
            let report = run_insitu(&cfg);
            let mem = report.memory();
            println!(
                "  {:<13} paper-ranks={paper_r:<5} ranks={r:<4} host-aggregate-peak={}",
                mode.label(),
                human_bytes(mem.host_aggregate_peak)
            );
            maybe_write_report(
                &args,
                &format!("fig3_{}_{r}ranks", mode.label().to_lowercase()),
                report.run_report.as_ref(),
            );
            rows.push(vec![
                mode.label().to_string(),
                paper_r.to_string(),
                r.to_string(),
                mem.host_aggregate_peak.to_string(),
                mem.host_max_rank_peak.to_string(),
                mem.gpu_aggregate_peak.to_string(),
                mem.unscoped.to_string(),
            ]);
            per_scale.push(mem.host_aggregate_peak);
        }
        mems.push((mode, per_scale));
    }

    let headers = [
        "config",
        "paper_ranks",
        "ranks",
        "host_aggregate_peak_B",
        "host_max_rank_peak_B",
        "gpu_aggregate_peak_B",
        "unscoped_B",
    ];
    println!("\nFigure 3 — memory high-water marks (tracking accountants)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fig3_memory", &headers, &rows);

    let chk = &mems[0].1;
    let cat = &mems[1].1;
    println!("shape: Catalyst overhead over Checkpointing (paper: ≈ +25%):");
    for i in 0..chk.len() {
        println!(
            "  ranks {:>5}: {:+.1}%",
            paper_ranks[i],
            (cat[i] as f64 / chk[i] as f64 - 1.0) * 100.0
        );
    }
}
