//! **Figure 6** — main-memory footprint per NekRS-SENSEI simulation node
//! in the in-transit RBC workflow, weak scaling (§4.2, JUWELS Booster).
//!
//! Paper observations: per-node memory is flat in the node count; Catalyst
//! and No Transport are very similar (the rendering memory lives on the
//! endpoint); Checkpointing's overhead is visible but not large; and —
//! the architectural point — simulation-node memory is independent of the
//! number of visualization nodes.

use bench_harness::{cases, format_table, maybe_write_csv, maybe_write_report, HarnessArgs};
use memtrack::human_bytes;
use nek_sensei::{run_intransit, EndpointMode};

fn main() {
    let args = HarnessArgs::parse();
    let sim_rank_counts: Vec<usize> = if args.full {
        vec![16, 32, 64, 128]
    } else {
        vec![4, 8, 16]
    };
    let steps = args.steps.unwrap_or(30);
    let trigger = args.trigger.unwrap_or(10);

    // Same derating as fig5 so the runs are the same runs (memory itself
    // is rate-independent).
    let (machine, _derate) = cases::juwels_derated();

    let mut rows = Vec::new();
    let mut by_mode: Vec<(EndpointMode, Vec<u64>)> = Vec::new();
    for mode in [
        EndpointMode::NoTransport,
        EndpointMode::Checkpointing,
        EndpointMode::Catalyst,
    ] {
        let mut mems = Vec::new();
        for &sim_ranks in &sim_rank_counts {
            let mut cfg = cases::intransit_config(sim_ranks, steps, trigger, machine.clone(), mode);
            cfg.sched = args.sched_mode();
            cfg.wire = args.wire_kind();
            cfg.telemetry = args.telemetry();
            let report = run_intransit(&cfg);
            println!(
                "  {:<13} sim-ranks={sim_ranks:<4} per-node-peak={}",
                mode.label(),
                human_bytes(report.sim_node_mem_peak)
            );
            maybe_write_report(
                &args,
                &format!(
                    "fig6_{}_{sim_ranks}ranks",
                    mode.label().to_lowercase().replace(' ', "_")
                ),
                report.run_report.as_ref(),
            );
            rows.push(vec![
                mode.label().to_string(),
                sim_ranks.to_string(),
                report.sim_node_mem_peak.to_string(),
                report.sim.memory.host_aggregate_peak.to_string(),
                report.sim.memory.unscoped.to_string(),
                report.endpoint_ranks.to_string(),
            ]);
            mems.push(report.sim_node_mem_peak);
        }
        by_mode.push((mode, mems));
    }

    let headers = [
        "config",
        "sim_ranks",
        "sim_node_mem_peak_B",
        "host_aggregate_peak_B",
        "unscoped_B",
        "endpoint_ranks",
    ];
    println!("\nFigure 6 — memory footprint per simulation node (JUWELS model)");
    println!("{}", format_table(&headers, &rows));
    maybe_write_csv(&args, "fig6_intransit_memory", &headers, &rows);

    let base = &by_mode[0].1;
    println!("shape: per-node memory flatness across rank counts:");
    for (mode, mems) in &by_mode {
        let min = *mems.iter().min().expect("nonempty") as f64;
        let max = *mems.iter().max().expect("nonempty") as f64;
        println!("  {:<13} {:.2}× (paper: flat)", mode.label(), max / min);
    }
    let last = base.len() - 1;
    println!("shape: overhead vs No Transport at the largest scale:");
    for (mode, mems) in &by_mode[1..] {
        println!(
            "  {:<13} {:+.1}% (paper: Catalyst ≈ No Transport; Checkpointing visible but small)",
            mode.label(),
            (mems[last] as f64 / base[last] as f64 - 1.0) * 100.0
        );
    }
}
