//! **Figure 1** — visualization of the pb146 pebble-bed simulation.
//!
//! Runs the reduced-scale pebble-bed case for a few dozen steps and
//! renders the paper's style of view: the pebble-bed surface colored by
//! velocity magnitude plus a pressure slice. PNGs land under `--out`
//! (default `out/fig1`).

use bench_harness::{cases, maybe_write_report, HarnessArgs};
use commsim::{run_ranks, MachineModel, TelemetryHub};
use sem::cases::{pb146, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("out/fig1"));
    let steps = args.steps.unwrap_or(30);
    let ranks = 4;

    // Render harnesses have no workflow driver, so `--report-out` gets
    // the hub-only artifact: instrument totals (sem/step_time quantiles,
    // render counters), no per-step series.
    let hub = args.telemetry().then(TelemetryHub::default);
    let rank_hub = hub.clone();
    let sched = args.sched_mode();
    let results = commsim::with_mode(sched, || {
        run_ranks(ranks, MachineModel::polaris(), move |comm| {
            if let Some(hub) = &rank_hub {
                comm.enable_telemetry(hub, 0);
            }
            let params = CaseParams::pb146_default();
            let case = pb146(&params, 146);
            let mut solver = case.build(comm);
            for _ in 0..steps {
                solver.step(comm);
            }
            let (images, bytes) = cases::render_current_state(
                comm,
                &mut solver,
                cases::pb146_showcase_pipeline(),
                Some(out.clone()),
            );
            (solver.kinetic_energy(comm), images, bytes)
        })
    });

    let (ke, images, bytes) = results[0];
    println!("pb146 after {steps} steps: kinetic energy {ke:.4}");
    println!("Figure 1: rendered {images} image(s), {bytes} bytes of PNGs");
    println!("(rank 0 wrote the files; see the output directory)");
    if let Some(hub) = &hub {
        let report = telemetry::RunReport::collect(
            telemetry::Manifest {
                case: "pb146".into(),
                workflow: "render".into(),
                mode: "showcase".into(),
                exec: "synchronous".into(),
                sched: sched.label().into(),
                wire: "none".into(),
                ranks,
                endpoint_ranks: 0,
                steps: steps as u64,
                trigger_every: steps as u64,
                machine: "polaris".into(),
                fault_plan: "none".into(),
                pool_threads: rayon::pool::current_threads(),
                pipeline_depth: 0,
            },
            hub,
            Vec::new(),
            telemetry::MemorySummary::default(),
        );
        maybe_write_report(&args, "fig1_pb146_render", Some(&report));
    }
}
