//! **Figure 1** — visualization of the pb146 pebble-bed simulation.
//!
//! Runs the reduced-scale pebble-bed case for a few dozen steps and
//! renders the paper's style of view: the pebble-bed surface colored by
//! velocity magnitude plus a pressure slice. PNGs land under `--out`
//! (default `out/fig1`).

use bench_harness::HarnessArgs;
use commsim::{run_ranks, MachineModel};
use insitu::{AnalysisAdaptor, DataAdaptor};
use nek_sensei::NekDataAdaptor;
use render::pipeline::{FilterKind, RenderPass, RenderPipeline};
use render::{CatalystAnalysis, Colormap};
use sem::cases::{pb146, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("out/fig1"));
    let steps = args.steps.unwrap_or(30);
    let ranks = 4;

    let results = run_ranks(ranks, MachineModel::polaris(), move |comm| {
        let params = CaseParams::pb146_default();
        let case = pb146(&params, 146);
        let mut solver = case.build(comm);
        for _ in 0..steps {
            solver.step(comm);
        }
        let pipeline = RenderPipeline {
            width: 1000,
            height: 750,
            passes: vec![
                RenderPass {
                    name: "pebble_bed_surface".into(),
                    filter: FilterKind::Surface,
                    array: "velocity".into(),
                    colormap: Colormap::viridis(),
                    range: None,
                    camera_dir: [1.0, 0.8, 0.45],
                },
                RenderPass {
                    name: "pressure_slice".into(),
                    filter: FilterKind::Slice {
                        origin: [0.5, 0.5, 1.0],
                        normal: [0.0, 1.0, 0.0],
                    },
                    array: "pressure".into(),
                    colormap: Colormap::cool_warm(),
                    range: None,
                    camera_dir: [0.0, -1.0, 0.15],
                },
                RenderPass {
                    name: "q_criterion_cores".into(),
                    filter: FilterKind::ContourAtFraction(0.55),
                    array: "q_criterion".into(),
                    colormap: Colormap::viridis(),
                    range: None,
                    camera_dir: [0.8, 1.0, 0.5],
                },
            ],
            compositing: render::pipeline::Compositing::Gather,
            legend: true,
        };
        let mut analysis = CatalystAnalysis::new("mesh", pipeline, Some(out.clone()));
        let mut da = NekDataAdaptor::new(comm, &mut solver);
        analysis.execute(comm, &mut da).expect("render");
        da.release_data();
        (
            solver.kinetic_energy(comm),
            analysis.images_rendered(),
            analysis.bytes_written(),
        )
    });

    let (ke, images, bytes) = results[0];
    println!("pb146 after {steps} steps: kinetic energy {ke:.4}");
    println!("Figure 1: rendered {images} image(s), {bytes} bytes of PNGs");
    println!("(rank 0 wrote the files; see the output directory)");
}
