//! **Figure 4** — side view of a Rayleigh–Bénard convection case.
//!
//! Runs the reduced-scale RBC case past convection onset and renders the
//! paper's side view: a vertical slice colored by temperature, with a
//! velocity-magnitude contour as the second image.

use bench_harness::HarnessArgs;
use commsim::{run_ranks, MachineModel};
use insitu::{AnalysisAdaptor, DataAdaptor};
use nek_sensei::NekDataAdaptor;
use render::pipeline::{FilterKind, RenderPass, RenderPipeline};
use render::{CatalystAnalysis, Colormap};
use sem::cases::{rbc, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("out/fig4"));
    let steps = args.steps.unwrap_or(120);
    let ranks = 4;

    let results = run_ranks(ranks, MachineModel::juwels_booster(), move |comm| {
        let params = CaseParams::rbc_default();
        let case = rbc(&params, 1e5, 0.7);
        let mut solver = case.build(comm);
        for _ in 0..steps {
            solver.step(comm);
        }
        let pipeline = RenderPipeline {
            width: 1200,
            height: 500,
            passes: vec![
                RenderPass {
                    name: "rbc_side_temperature".into(),
                    filter: FilterKind::Slice {
                        origin: [1.0, 1.0, 0.5],
                        normal: [0.0, 1.0, 0.0],
                    },
                    array: "temperature".into(),
                    colormap: Colormap::cool_warm(),
                    range: Some((0.0, 1.0)),
                    camera_dir: [0.0, -1.0, 0.0],
                },
                RenderPass {
                    name: "rbc_velocity_contour".into(),
                    filter: FilterKind::ContourAtFraction(0.5),
                    array: "velocity".into(),
                    colormap: Colormap::viridis(),
                    range: None,
                    camera_dir: [0.6, -1.0, 0.35],
                },
            ],
            compositing: render::pipeline::Compositing::Gather,
            legend: true,
        };
        let mut analysis = CatalystAnalysis::new("mesh", pipeline, Some(out.clone()));
        let mut da = NekDataAdaptor::new(comm, &mut solver);
        analysis.execute(comm, &mut da).expect("render");
        da.release_data();
        (
            solver.kinetic_energy(comm),
            solver.max_velocity(comm),
            analysis.images_rendered(),
        )
    });

    let (ke, umax, images) = results[0];
    println!("RBC after {steps} steps: KE = {ke:.5}, |u|max = {umax:.4}");
    println!("Figure 4: rendered {images} image(s) to the output directory");
    if ke < 1e-9 {
        println!("note: convection has not set in yet — try more --steps");
    }
}
