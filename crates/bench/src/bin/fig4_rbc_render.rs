//! **Figure 4** — side view of a Rayleigh–Bénard convection case.
//!
//! Runs the reduced-scale RBC case past convection onset and renders the
//! paper's side view: a vertical slice colored by temperature, with a
//! velocity-magnitude contour as the second image.

use bench_harness::{cases, maybe_write_report, HarnessArgs};
use commsim::{run_ranks, MachineModel, TelemetryHub};
use sem::cases::{rbc, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("out/fig4"));
    let steps = args.steps.unwrap_or(120);
    let ranks = 4;

    // Hub-only telemetry, like fig1: instrument totals without a
    // workflow driver's per-step series.
    let hub = args.telemetry().then(TelemetryHub::default);
    let rank_hub = hub.clone();
    let sched = args.sched_mode();
    let results = commsim::with_mode(sched, || {
        run_ranks(ranks, MachineModel::juwels_booster(), move |comm| {
            if let Some(hub) = &rank_hub {
                comm.enable_telemetry(hub, 0);
            }
            let params = CaseParams::rbc_default();
            let case = rbc(&params, 1e5, 0.7);
            let mut solver = case.build(comm);
            for _ in 0..steps {
                solver.step(comm);
            }
            let (images, _bytes) = cases::render_current_state(
                comm,
                &mut solver,
                cases::rbc_side_view_pipeline(),
                Some(out.clone()),
            );
            (
                solver.kinetic_energy(comm),
                solver.max_velocity(comm),
                images,
            )
        })
    });

    let (ke, umax, images) = results[0];
    println!("RBC after {steps} steps: KE = {ke:.5}, |u|max = {umax:.4}");
    println!("Figure 4: rendered {images} image(s) to the output directory");
    if ke < 1e-9 {
        println!("note: convection has not set in yet — try more --steps");
    }
    if let Some(hub) = &hub {
        let report = telemetry::RunReport::collect(
            telemetry::Manifest {
                case: "rbc".into(),
                workflow: "render".into(),
                mode: "side_view".into(),
                exec: "synchronous".into(),
                sched: sched.label().into(),
                wire: "none".into(),
                ranks,
                endpoint_ranks: 0,
                steps: steps as u64,
                trigger_every: steps as u64,
                machine: "juwels-booster".into(),
                fault_plan: "none".into(),
                pool_threads: rayon::pool::current_threads(),
                pipeline_depth: 0,
            },
            hub,
            Vec::new(),
            telemetry::MemorySummary::default(),
        );
        maybe_write_report(&args, "fig4_rbc_render", Some(&report));
    }
}
