//! **Figure 4** — side view of a Rayleigh–Bénard convection case.
//!
//! Runs the reduced-scale RBC case past convection onset and renders the
//! paper's side view: a vertical slice colored by temperature, with a
//! velocity-magnitude contour as the second image.

use bench_harness::{cases, HarnessArgs};
use commsim::{run_ranks, MachineModel};
use sem::cases::{rbc, CaseParams};

fn main() {
    let args = HarnessArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("out/fig4"));
    let steps = args.steps.unwrap_or(120);
    let ranks = 4;

    let results = run_ranks(ranks, MachineModel::juwels_booster(), move |comm| {
        let params = CaseParams::rbc_default();
        let case = rbc(&params, 1e5, 0.7);
        let mut solver = case.build(comm);
        for _ in 0..steps {
            solver.step(comm);
        }
        let (images, _bytes) = cases::render_current_state(
            comm,
            &mut solver,
            cases::rbc_side_view_pipeline(),
            Some(out.clone()),
        );
        (
            solver.kinetic_energy(comm),
            solver.max_velocity(comm),
            images,
        )
    });

    let (ke, umax, images) = results[0];
    println!("RBC after {steps} steps: KE = {ke:.5}, |u|max = {umax:.4}");
    println!("Figure 4: rendered {images} image(s) to the output directory");
    if ke < 1e-9 {
        println!("note: convection has not set in yet — try more --steps");
    }
}
