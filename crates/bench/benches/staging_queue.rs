//! Ablation: staging queue policies (block vs discard-newest) under a slow
//! consumer (DESIGN.md).

use commsim::{run_ranks_with_state, MachineModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use transport::{QueuePolicy, StagingLink, StagingNetwork};

fn run_policy(policy: QueuePolicy, steps: u64) -> (u64, u64) {
    let (writers, readers) = StagingNetwork::build(1, 1, 2, StagingLink::test_tiny(), policy);
    let reader_thread = std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let mut n = 0u64;
            while let Some(delivery) = reader.recv_step(comm).unwrap() {
                // Skip-marker partials announce discarded steps; count only
                // steps that actually carried data.
                if delivery.is_complete() {
                    n += 1;
                }
            }
            n
        })
    });
    let writer_stats =
        run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, mut w| {
            for s in 0..steps {
                w.write(comm, s, 0.0, vec![0u8; 4096])
                    .expect("fault-free staging write");
            }
            (w.steps_written(), w.steps_dropped())
        });
    let consumed = reader_thread.join().expect("reader world")[0];
    let (written, dropped) = writer_stats[0];
    assert_eq!(written, consumed);
    (written, dropped)
}

fn bench_staging(c: &mut Criterion) {
    let mut group = c.benchmark_group("staging_queue");
    group.sample_size(10);
    for policy in [QueuePolicy::Block, QueuePolicy::DiscardNewest] {
        let label = format!("{policy:?}");
        group.bench_with_input(BenchmarkId::new("policy", &label), &policy, |b, &p| {
            b.iter(|| black_box(run_policy(p, 50)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_staging);
criterion_main!(benches);
