//! BP-style marshaling throughput (the per-trigger serialization cost on
//! the in-transit simulation side).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
use transport::{marshal_blocks, unmarshal_blocks};

fn block_of(elems: usize) -> MultiBlock {
    let mut g = UnstructuredGrid::new();
    let np = elems + 1;
    for k in 0..np {
        for j in 0..2 {
            for i in 0..2 {
                g.add_point([i as f64, j as f64, k as f64]);
            }
        }
    }
    let id = |i: usize, j: usize, k: usize| ((k * 2 + j) * 2 + i) as i64;
    for k in 0..elems {
        g.add_cell(
            CellType::Hexahedron,
            &[
                id(0, 0, k),
                id(1, 0, k),
                id(1, 1, k),
                id(0, 1, k),
                id(0, 0, k + 1),
                id(1, 0, k + 1),
                id(1, 1, k + 1),
                id(0, 1, k + 1),
            ],
        );
    }
    let n = g.n_points();
    g.add_point_data(DataArray::scalars_f64(
        "pressure",
        (0..n).map(|i| i as f64).collect(),
    ))
    .unwrap();
    g.add_point_data(DataArray::vectors_f64(
        "velocity",
        (0..3 * n).map(|i| i as f64 * 0.5).collect(),
    ))
    .unwrap();
    MultiBlock::local(0, 1, g)
}

fn bench_bp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_marshal");
    group.sample_size(30);
    for elems in [64usize, 512, 4096] {
        let mb = block_of(elems);
        group.bench_with_input(BenchmarkId::new("marshal", elems), &elems, |b, _| {
            b.iter(|| black_box(marshal_blocks(0, 1, 0.5, &mb)).len())
        });
        let payload = marshal_blocks(0, 1, 0.5, &mb);
        group.bench_with_input(BenchmarkId::new("unmarshal", elems), &elems, |b, _| {
            b.iter(|| black_box(unmarshal_blocks(&payload).unwrap()).blocks.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bp);
criterion_main!(benches);
