//! Gather–scatter assembly throughput across mesh sizes and rank counts.

use commsim::{run_ranks, MachineModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sem::gs::GatherScatter;
use sem::mesh::{LocalMesh, MeshSpec};
use std::sync::Arc;

fn bench_gs(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    group.sample_size(10);
    for (order, elems) in [(3usize, [4usize, 4, 4]), (5, [4, 4, 4]), (3, [6, 6, 6])] {
        let id = format!("N{order}_{}elems", elems.iter().product::<usize>());
        group.bench_with_input(BenchmarkId::new("sum_1rank", &id), &order, |b, _| {
            b.iter(|| {
                // Includes world setup: gs.sum needs a live communicator.
                let res = run_ranks(1, MachineModel::test_tiny(), move |comm| {
                    let spec = Arc::new(MeshSpec::box_mesh(order, elems, [1.0; 3], [false; 3]));
                    let mesh = LocalMesh::new(spec, 0, 1);
                    let gs = GatherScatter::new(&mesh, comm);
                    let mut f = mesh.eval_nodal(|x| x[0] + x[1] * x[2]);
                    for _ in 0..10 {
                        gs.sum(comm, &mut f);
                    }
                    f[0]
                });
                black_box(res);
            })
        });
    }
    // Ablation: the library's sorted-segment assembly vs a naive
    // hashmap-accumulate strategy (DESIGN.md).
    group.bench_function("assembly_sorted_segments", |b| {
        b.iter(|| {
            let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
                let spec = Arc::new(MeshSpec::box_mesh(4, [4, 4, 4], [1.0; 3], [false; 3]));
                let mesh = LocalMesh::new(spec, 0, 1);
                let gs = GatherScatter::new(&mesh, comm);
                let mut f = mesh.eval_nodal(|x| x[0] * 31.0 + x[1]);
                for _ in 0..20 {
                    gs.sum(comm, &mut f);
                    // Rescale so values stay finite across iterations.
                    for v in f.iter_mut() {
                        *v *= 0.1;
                    }
                }
                f[0]
            });
            black_box(res);
        })
    });
    group.bench_function("assembly_hashmap", |b| {
        b.iter(|| {
            let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
                use std::collections::HashMap;
                let spec = Arc::new(MeshSpec::box_mesh(4, [4, 4, 4], [1.0; 3], [false; 3]));
                let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
                let l = mesh.layout();
                // Precompute gids as the library does.
                let mut gids = vec![0u64; l.n_nodes()];
                for le in 0..mesh.elems.len() {
                    for k in 0..l.np {
                        for j in 0..l.np {
                            for i in 0..l.np {
                                gids[l.idx(le, i, j, k)] = mesh.gid(le, i, j, k);
                            }
                        }
                    }
                }
                let mut f = mesh.eval_nodal(|x| x[0] * 31.0 + x[1]);
                for _ in 0..20 {
                    let mut acc: HashMap<u64, f64> = HashMap::with_capacity(f.len());
                    for (i, &v) in f.iter().enumerate() {
                        *acc.entry(gids[i]).or_insert(0.0) += v;
                    }
                    for (i, v) in f.iter_mut().enumerate() {
                        *v = acc[&gids[i]] * 0.1;
                    }
                }
                f[0]
            });
            black_box(res);
        })
    });

    // Halo exchange scaling: same mesh, more ranks.
    for ranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("sum_ranks", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let res = run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
                    let spec = Arc::new(MeshSpec::box_mesh(3, [4, 4, 8], [1.0; 3], [false; 3]));
                    let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
                    let gs = GatherScatter::new(&mesh, comm);
                    let mut f = vec![1.0; mesh.layout().n_nodes()];
                    for _ in 0..10 {
                        gs.sum(comm, &mut f);
                    }
                    f.first().copied().unwrap_or(0.0)
                });
                black_box(res);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gs);
criterion_main!(benches);
