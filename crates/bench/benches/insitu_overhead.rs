//! End-to-end per-configuration cost of the §4.1 in situ experiment at
//! miniature scale: the criterion-measured wall time of a whole
//! {Original, Checkpointing, Catalyst} run (solver + triggers). The
//! regenerating harness for Figure 2 proper is `--bin
//! fig2_time_to_solution`; this bench tracks regressions in the same code
//! path.

use commsim::MachineModel;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn bench_insitu(c: &mut Criterion) {
    let mut group = c.benchmark_group("insitu_run");
    group.sample_size(10);
    for mode in [
        InSituMode::Original,
        InSituMode::Checkpointing,
        InSituMode::Catalyst,
    ] {
        group.bench_with_input(BenchmarkId::new("mode", mode.label()), &mode, |b, &mode| {
            b.iter(|| {
                let mut params = CaseParams::pb146_default();
                params.elems = [2, 2, 4];
                params.order = 2;
                let report = run_insitu(&InSituConfig {
                    case: pb146(&params, 4),
                    ranks: 2,
                    steps: 3,
                    trigger_every: 1,
                    machine: MachineModel::polaris(),
                    image_size: (64, 48),
                    mode,
                    exec: Default::default(),
                    sched: Default::default(),
                    faults: commsim::FaultPlan::none(),
                    output_dir: None,
                    trace: false,
                    telemetry: false,
                    recovery: Default::default(),
                });
                black_box(report.metrics.time_to_solution)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insitu);
criterion_main!(benches);
