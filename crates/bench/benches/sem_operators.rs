//! Microbenchmarks of the SEM tensor-product kernels, including the
//! DESIGN.md ablation: tensor-product derivative sweeps vs a naive dense
//! operator application over the full element.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sem::basis::Basis1d;
use sem::field::FieldLayout;

/// Naive dense application: treat the elemental derivative as one
/// (N+1)³×(N+1)³ matrix — the thing tensor-product factorization avoids.
fn naive_dense_deriv(dense: &[f64], u: &[f64], out: &mut [f64], npe: usize) {
    for e in 0..u.len() / npe {
        let ue = &u[e * npe..(e + 1) * npe];
        let oe = &mut out[e * npe..(e + 1) * npe];
        for i in 0..npe {
            let row = &dense[i * npe..(i + 1) * npe];
            oe[i] = row.iter().zip(ue).map(|(a, b)| a * b).sum();
        }
    }
}

/// Build the dense x-derivative matrix D ⊗ I ⊗ I for the ablation.
fn dense_dx(basis: &Basis1d) -> Vec<f64> {
    let np = basis.np();
    let npe = np * np * np;
    let mut dense = vec![0.0; npe * npe];
    for k in 0..np {
        for j in 0..np {
            for i in 0..np {
                let row = (k * np + j) * np + i;
                for m in 0..np {
                    let col = (k * np + j) * np + m;
                    dense[row * npe + col] = basis.deriv[i * np + m];
                }
            }
        }
    }
    dense
}

fn tensor_deriv(basis: &Basis1d, u: &[f64], out: &mut [f64], np: usize) {
    // The same sweep operators.rs uses for axis 0, inlined without the
    // cost-model plumbing so criterion measures pure kernel time.
    let d = &basis.deriv;
    let npe = np * np * np;
    for e in 0..u.len() / npe {
        let ue = &u[e * npe..(e + 1) * npe];
        let oe = &mut out[e * npe..(e + 1) * npe];
        for k in 0..np {
            for j in 0..np {
                let row = (k * np + j) * np;
                for i in 0..np {
                    let mut acc = 0.0;
                    for m in 0..np {
                        acc += d[i * np + m] * ue[row + m];
                    }
                    oe[row + i] = acc;
                }
            }
        }
    }
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sem_deriv");
    group.sample_size(20);
    for order in [3usize, 5, 7] {
        let basis = Basis1d::new(order);
        let layout = FieldLayout::new(order, 64);
        let u: Vec<f64> = (0..layout.n_nodes())
            .map(|i| (i as f64 * 0.1).sin())
            .collect();
        let mut out = vec![0.0; u.len()];
        group.bench_with_input(BenchmarkId::new("tensor", order), &order, |b, _| {
            b.iter(|| {
                tensor_deriv(&basis, black_box(&u), &mut out, order + 1);
                black_box(&out);
            })
        });
        let dense = dense_dx(&basis);
        let npe = layout.nodes_per_elem();
        group.bench_with_input(BenchmarkId::new("naive_dense", order), &order, |b, _| {
            b.iter(|| {
                naive_dense_deriv(black_box(&dense), black_box(&u), &mut out, npe);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
