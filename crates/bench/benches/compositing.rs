//! Ablation: serial-gather vs binary-tree depth compositing (DESIGN.md).

use commsim::{run_ranks, MachineModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use render::composite::{composite_to_root, composite_tree};
use render::{Colormap, Framebuffer};

fn local_frame(rank: usize, w: usize, h: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h);
    let cam = render::Camera::look_at([0.0, 0.0, 5.0], [0.0, 0.0, 0.0]);
    let z = 1.0 - rank as f64 * 0.1;
    let soup = render::TriangleSoup {
        positions: vec![[-1.0, -1.0, z], [1.0, -1.0, z], [0.0, 1.0, z]],
        scalars: vec![rank as f64; 3],
    };
    fb.draw(&cam, &soup, &Colormap::viridis(), (0.0, 8.0));
    fb
}

fn bench_compositing(c: &mut Criterion) {
    let mut group = c.benchmark_group("compositing");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("gather", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let res = run_ranks(ranks, MachineModel::test_tiny(), |comm| {
                    let fb = local_frame(comm.rank(), 160, 120);
                    composite_to_root(comm, fb).map(|f| f.coverage())
                });
                black_box(res);
            })
        });
        group.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let res = run_ranks(ranks, MachineModel::test_tiny(), |comm| {
                    let fb = local_frame(comm.rank(), 160, 120);
                    composite_tree(comm, fb).map(|f| f.coverage())
                });
                black_box(res);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compositing);
criterion_main!(benches);
