//! End-to-end per-configuration cost of the §4.2 in transit experiment at
//! miniature scale (Figures 5/6 regenerate from `--bin fig5_intransit_time`
//! / `fig6_intransit_memory`; this bench tracks the code path).

use commsim::MachineModel;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig};
use sem::cases::{rbc, CaseParams};
use transport::{QueuePolicy, StagingLink};

fn bench_intransit(c: &mut Criterion) {
    let mut group = c.benchmark_group("intransit_run");
    group.sample_size(10);
    for mode in [
        EndpointMode::NoTransport,
        EndpointMode::Checkpointing,
        EndpointMode::Catalyst,
    ] {
        group.bench_with_input(BenchmarkId::new("mode", mode.label()), &mode, |b, &mode| {
            b.iter(|| {
                let mut params = CaseParams::rbc_default();
                params.elems = [2, 2, 4];
                params.order = 2;
                let report = run_intransit(&InTransitConfig {
                    case: rbc(&params, 1e4, 0.7),
                    sim_ranks: 4,
                    ratio: 4,
                    steps: 3,
                    trigger_every: 1,
                    machine: MachineModel::juwels_booster(),
                    link: StagingLink::ucx_hdr200(),
                    queue_capacity: 8,
                    policy: QueuePolicy::Block,
                    mode,
                    sched: Default::default(),
                    wire: Default::default(),
                    staging_consumers: 0,
                    staging_dir: None,
                    image_size: (64, 48),
                    output_dir: None,
                    faults: commsim::FaultPlan::none(),
                    writer_config: transport::WriterConfig::default(),
                    fallback_dir: None,
                    trace: false,
                    telemetry: false,
                    recovery: Default::default(),
                });
                black_box(report.sim.mean_step_time)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intransit);
criterion_main!(benches);
