//! Rendering pipeline stage costs: filter extraction, rasterization, and
//! PNG encoding (the per-trigger work of the Catalyst configuration).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use meshdata::{CellType, DataArray, UnstructuredGrid};
use render::image::{encode_png, encode_ppm};
use render::{contour, slice_plane, surface, Camera, Colormap, Framebuffer};

fn brick(n: usize) -> UnstructuredGrid {
    let mut g = UnstructuredGrid::new();
    let np = n + 1;
    for k in 0..np {
        for j in 0..np {
            for i in 0..np {
                g.add_point([i as f64, j as f64, k as f64]);
            }
        }
    }
    let id = |i: usize, j: usize, k: usize| ((k * np + j) * np + i) as i64;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                g.add_cell(
                    CellType::Hexahedron,
                    &[
                        id(i, j, k),
                        id(i + 1, j, k),
                        id(i + 1, j + 1, k),
                        id(i, j + 1, k),
                        id(i, j, k + 1),
                        id(i + 1, j, k + 1),
                        id(i + 1, j + 1, k + 1),
                        id(i, j + 1, k + 1),
                    ],
                );
            }
        }
    }
    let vals: Vec<f64> = g
        .points
        .iter()
        .map(|p| (p[0] * 0.7).sin() + (p[1] * 0.5).cos() + p[2] * 0.1)
        .collect();
    g.add_point_data(DataArray::scalars_f64("s", vals)).unwrap();
    g
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("render");
    group.sample_size(20);
    for n in [8usize, 16] {
        let g = brick(n);
        group.bench_with_input(BenchmarkId::new("slice", n), &n, |b, _| {
            b.iter(|| black_box(slice_plane(&g, [n as f64 / 2.0; 3], [0.0, 0.0, 1.0], "s")))
        });
        group.bench_with_input(BenchmarkId::new("contour", n), &n, |b, _| {
            b.iter(|| black_box(contour(&g, "s", 0.8)))
        });
        group.bench_with_input(BenchmarkId::new("surface", n), &n, |b, _| {
            b.iter(|| black_box(surface(&g, "s")))
        });
    }

    let g = brick(12);
    let soup = surface(&g, "s");
    let cam = Camera::framing([0.0, 12.0, 0.0, 12.0, 0.0, 12.0], [1.0, 0.7, 0.4]);
    let cm = Colormap::viridis();
    for size in [(320usize, 240usize), (800, 600)] {
        let label = format!("{}x{}", size.0, size.1);
        group.bench_with_input(BenchmarkId::new("raster", &label), &size, |b, &(w, h)| {
            b.iter(|| {
                let mut fb = Framebuffer::new(w, h);
                fb.draw(&cam, black_box(&soup), &cm, (0.0, 3.0));
                black_box(fb.coverage());
            })
        });
        let mut fb = Framebuffer::new(size.0, size.1);
        fb.draw(&cam, &soup, &cm, (0.0, 3.0));
        group.bench_with_input(BenchmarkId::new("encode_png", &label), &size, |b, _| {
            b.iter(|| black_box(encode_png(&fb)).len())
        });
        group.bench_with_input(BenchmarkId::new("encode_ppm", &label), &size, |b, _| {
            b.iter(|| black_box(encode_ppm(&fb)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_render);
criterion_main!(benches);
