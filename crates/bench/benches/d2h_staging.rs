//! Ablation: device→host copy granularity — per-field transfers vs one
//! pooled transfer (DESIGN.md). The measured quantity is the *virtual*
//! staging time per trigger; criterion wraps the whole miniature run, and
//! the bench also asserts the virtual-time relationship so a regression in
//! the cost model fails loudly.

use commsim::{run_ranks, MachineModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sem::cases::{pb146, CaseParams};
use sem::navier_stokes::FieldId;

const FIELDS: [FieldId; 4] = [
    FieldId::VelX,
    FieldId::VelY,
    FieldId::VelZ,
    FieldId::Pressure,
];

fn stage(pooled: bool) -> f64 {
    let res = run_ranks(1, MachineModel::polaris(), move |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [3, 3, 4];
        params.order = 3;
        let solver = pb146(&params, 8).build(comm);
        let t0 = comm.now();
        if pooled {
            black_box(solver.stage_many_to_host(comm, &FIELDS));
        } else {
            for id in FIELDS {
                black_box(solver.stage_to_host(comm, id));
            }
        }
        comm.now() - t0
    });
    res[0]
}

fn bench_d2h(c: &mut Criterion) {
    // Cost-model invariant: pooling saves exactly (n_fields − 1) launch
    // latencies.
    let per_field = stage(false);
    let pooled = stage(true);
    let latency = MachineModel::polaris().gpu.xfer_latency;
    assert!(
        (per_field - pooled - 3.0 * latency).abs() < 1e-9,
        "pooled {pooled} vs per-field {per_field}"
    );

    let mut group = c.benchmark_group("d2h_staging");
    group.sample_size(10);
    for pooled in [false, true] {
        let label = if pooled { "pooled" } else { "per_field" };
        group.bench_with_input(BenchmarkId::new("granularity", label), &pooled, |b, &p| {
            b.iter(|| black_box(stage(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_d2h);
criterion_main!(benches);
