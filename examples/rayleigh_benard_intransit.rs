//! The paper's §4.2 workload: Rayleigh–Bénard convection with **in
//! transit** visualization — simulation ranks stream data through the
//! ADIOS2-SST-style staging engine to separate SENSEI endpoint ranks
//! (4:1 ratio) that render images and/or write VTU checkpoints.
//!
//! Run with: `cargo run --release --example rayleigh_benard_intransit`

use commsim::MachineModel;
use memtrack::human_bytes;
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig};
use sem::cases::{rbc, CaseParams};
use transport::{QueuePolicy, StagingLink};

fn main() {
    let out = std::path::PathBuf::from("out/rbc_intransit");
    let mut params = CaseParams::rbc_default();
    params.elems = [3, 3, 8];
    params.order = 3;

    let base = InTransitConfig {
        case: rbc(&params, 1e5, 0.7),
        sim_ranks: 8,
        ratio: 4, // the paper's 4:1 simulation:endpoint split
        steps: 30,
        trigger_every: 10,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::NoTransport,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (800, 600),
        output_dir: None,
        faults: commsim::FaultPlan::none(),
        writer_config: transport::WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    };

    println!("RBC at Ra=1e5, Pr=0.7 on 8 simulation ranks (+ endpoints at 4:1)\n");
    let mut rows = Vec::new();
    for mode in [
        EndpointMode::NoTransport,
        EndpointMode::Checkpointing,
        EndpointMode::Catalyst,
    ] {
        let report = run_intransit(&InTransitConfig {
            mode,
            output_dir: (mode == EndpointMode::Catalyst).then(|| out.clone()),
            ..base.clone()
        });
        println!(
            "{:<14} sim mean-step {:.4}s | sim-node mem {} | endpoint: {} ranks, {} steps, received {}, wrote {}",
            report.mode.label(),
            report.sim.mean_step_time,
            human_bytes(report.sim_node_mem_peak),
            report.endpoint_ranks,
            report.endpoint_steps,
            human_bytes(report.endpoint_bytes_received),
            human_bytes(report.endpoint_bytes_written),
        );
        rows.push(report);
    }

    let base_t = rows[0].sim.mean_step_time;
    println!("\nsim-side overhead vs No Transport:");
    for r in &rows[1..] {
        println!(
            "  {:<14} {:+.1}% time — the visualization work lives on the endpoint",
            r.mode.label(),
            (r.sim.mean_step_time / base_t - 1.0) * 100.0
        );
    }
    println!("\nCatalyst endpoint images: {}", out.display());
}
