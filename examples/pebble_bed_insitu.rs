//! The paper's §4.1 workload: the pb146 pebble-bed reactor case with in
//! situ Catalyst-style rendering, compared against built-in checkpointing.
//!
//! Run with: `cargo run --release --example pebble_bed_insitu`
//!
//! Produces real PNGs under `out/pebble_bed/` and prints the storage and
//! overhead comparison the paper reports (images ≪ checkpoints; modest
//! time overhead; ~25% more host memory for Catalyst).

use commsim::MachineModel;
use memtrack::human_bytes;
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn main() {
    let out = std::path::PathBuf::from("out/pebble_bed");
    let mut params = CaseParams::pb146_default();
    params.elems = [5, 5, 10];
    let case = pb146(&params, 146);
    println!(
        "pb146 at reduced scale: {} fluid elements around 146 pebbles",
        case.n_fluid_elems()
    );

    // Derate Polaris' throughputs so this reduced mesh exercises the
    // paper-scale compute:copy:I/O proportions (see DESIGN.md).
    let ranks = 4;
    let paper_nodes = 350_000.0 * 512.0;
    let our_nodes = (case.n_fluid_elems() * 64) as f64;
    let derate = (paper_nodes / our_nodes) * (ranks as f64 / 280.0);
    let machine = MachineModel::polaris().derate_throughput(derate.max(1.0));

    let base = InSituConfig {
        case,
        ranks,
        steps: 30,
        trigger_every: 10,
        machine,
        image_size: (800, 600),
        mode: InSituMode::Original,
        exec: nek_sensei::ExecMode::default(),
        sched: Default::default(),
        faults: commsim::FaultPlan::none(),
        trace: false,
        telemetry: false,
        recovery: Default::default(),
        output_dir: None,
    };

    let original = run_insitu(&base);
    let checkpointing = run_insitu(&InSituConfig {
        mode: InSituMode::Checkpointing,
        ..base.clone()
    });
    let catalyst = run_insitu(&InSituConfig {
        mode: InSituMode::Catalyst,
        output_dir: Some(out.clone()),
        ..base.clone()
    });

    println!(
        "\n{:<15} {:>14} {:>14} {:>12}",
        "config", "time-to-soln", "host mem", "storage"
    );
    for r in [&original, &checkpointing, &catalyst] {
        println!(
            "{:<15} {:>12.4}s {:>14} {:>12}",
            r.mode.label(),
            r.metrics.time_to_solution,
            human_bytes(r.memory().host_aggregate_peak),
            human_bytes(r.bytes_written),
        );
    }
    let t_over =
        (catalyst.metrics.time_to_solution / checkpointing.metrics.time_to_solution - 1.0) * 100.0;
    let m_over = (catalyst.memory().host_aggregate_peak as f64
        / checkpointing.memory().host_aggregate_peak as f64
        - 1.0)
        * 100.0;
    println!("\nCatalyst vs Checkpointing: {t_over:+.1}% time, {m_over:+.1}% host memory");
    println!(
        "storage economy: checkpoints are {:.1}× the image bytes at this mesh size; \
         the gap grows ∝ resolution (paper: ~3000× at production scale — \
         see `cargo run -p bench-harness --bin storage_economy`)",
        checkpointing.bytes_written as f64 / catalyst.bytes_written.max(1) as f64
    );
    println!("rendered images: {}", out.display());
}
