//! Checkpoint → restart round trip through the VTU format.
//!
//! Run with: `cargo run --release --example checkpoint_restart`
//!
//! Demonstrates the data-model plumbing end to end: the solver's state is
//! exported through the SENSEI-style adaptor, written as VTU pieces (+
//! parallel index), read back from disk, and verified bit-exact against
//! the live fields — the property a checkpoint exists to provide.

use commsim::{run_ranks, MachineModel};
use insitu::analyses::VtuCheckpointAnalysis;
use insitu::AnalysisAdaptor;
use meshdata::reader::read_vtu;
use meshdata::Centering;
use nek_sensei::SnapshotPlane;
use sem::cases::{pb146, CaseParams};
use sem::navier_stokes::FieldId;

fn main() {
    let dir = std::path::PathBuf::from("out/checkpoint_restart");
    let dir_for_ranks = dir.clone();

    let ranks = 2;
    run_ranks(ranks, MachineModel::polaris(), move |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [3, 3, 6];
        let mut solver = pb146(&params, 12).build(comm);
        for _ in 0..10 {
            solver.step(comm);
        }

        // Checkpoint through SENSEI.
        let mut chk = VtuCheckpointAnalysis::new(
            "mesh",
            vec!["pressure".into(), "velocity".into()],
            Some(dir_for_ranks.clone()),
        );
        let plane = SnapshotPlane::new(comm, &solver);
        let mut da = plane.publish(comm, &mut solver, ["pressure", "velocity"]);
        chk.execute(comm, &mut da).expect("checkpoint");
        let step = solver.step_index();
        comm.barrier();

        // Restart side: read this rank's piece back and verify.
        let piece = dir_for_ranks.join(format!("chk_{step:06}_b{}.vtu", comm.rank()));
        let bytes = std::fs::read(&piece).expect("piece written");
        let grid = read_vtu(&bytes).expect("valid VTU");
        let p_restored = grid
            .find_array("pressure", Centering::Point)
            .expect("pressure present");
        let p_live = solver.field_device(FieldId::Pressure).expect("live field");
        let max_err = (0..p_live.len())
            .map(|i| (p_restored.get(i, 0) - p_live[i]).abs())
            .fold(0.0, f64::max);
        assert_eq!(max_err, 0.0, "restart must be bit-exact");
        println!(
            "rank {}: {} points restored bit-exact from {}",
            comm.rank(),
            grid.n_points(),
            piece.display()
        );
    });

    println!(
        "checkpoint + parallel index under {} — open chk_*.pvtu in any VTK tool",
        dir.display()
    );
}
