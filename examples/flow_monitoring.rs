//! Image-free in situ monitoring: statistics, a point probe, located
//! extrema, and a watchdog that stops the run if the field blows up —
//! all selected from XML, with CSV time series written at finalize.
//!
//! Run with: `cargo run --release --example flow_monitoring`
//!
//! This is the "cheap tier" of in situ processing the paper's introduction
//! argues for: catching what happens *between* checkpoints without paying
//! for rendering.

use commsim::{run_ranks, MachineModel};
use insitu::Bridge;
use nek_sensei::SnapshotPlane;
use sem::cases::{rbc, CaseParams};

fn main() {
    let out = std::path::PathBuf::from("out/monitoring");
    std::fs::create_dir_all(&out).ok();
    let config = format!(
        r#"<sensei>
  <analysis type="stats"    array="velocity"    frequency="2"
            output="{out}/velocity_stats.csv"/>
  <analysis type="probe"    array="temperature" frequency="1"
            x="1.0" y="1.0" z="0.5" output="{out}/midpoint_temperature.csv"/>
  <analysis type="extrema"  array="velocity"    frequency="5"/>
  <analysis type="watchdog" array="velocity"    frequency="1" max="100.0"/>
</sensei>"#,
        out = out.display()
    );

    let reports = run_ranks(4, MachineModel::juwels_booster(), move |comm| {
        let mut params = CaseParams::rbc_default();
        params.elems = [3, 3, 4];
        params.order = 3;
        let mut solver = rbc(&params, 1e5, 0.7).build(comm);
        let mut bridge = Bridge::initialize(comm, &config, &[]).expect("valid config");
        let plane = SnapshotPlane::new(comm, &solver);
        let mut completed = 0u64;
        for step in 1..=40u64 {
            solver.step(comm);
            completed = step;
            if !bridge.triggers_at(step) {
                continue;
            }
            let mut da = plane.publish(comm, &mut solver, bridge.arrays_at(step));
            if !bridge.update(comm, step, &mut da).expect("update") {
                break; // the watchdog tripped
            }
        }
        bridge.finalize(comm).expect("finalize");
        (
            completed,
            solver.kinetic_energy(comm),
            bridge.analyses().execution_counts(),
        )
    });

    let (steps, ke, counts) = &reports[0];
    println!("ran {steps} steps (watchdog never tripped — flow is healthy), KE = {ke:.6}");
    println!("analysis executions [stats, probe, extrema, watchdog]: {counts:?}");
    for f in ["velocity_stats.csv", "midpoint_temperature.csv"] {
        let path = out.join(f);
        let lines = std::fs::read_to_string(&path)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        println!("wrote {} ({} lines)", path.display(), lines);
    }
}
