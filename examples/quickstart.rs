//! Quickstart: instrument a simulation with the SENSEI-style in situ
//! interface in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Mirrors the paper's §3 structure: a simulation (here the reduced-scale
//! pebble-bed case on 2 ranks), a `DataAdaptor` exposing its fields, and a
//! runtime XML config choosing the analyses — swappable without
//! recompiling the simulation.

use commsim::{run_ranks, MachineModel};
use insitu::Bridge;
use nek_sensei::SnapshotPlane;
use sem::cases::{pb146, CaseParams};

fn main() {
    // The runtime configuration (paper Listing 1). Change the analyses
    // here — the simulation code below never changes.
    const CONFIG: &str = r#"
<sensei>
  <analysis type="stats"     array="velocity" frequency="5"/>
  <analysis type="histogram" array="pressure" bins="12" frequency="10"/>
</sensei>"#;

    let reports = run_ranks(2, MachineModel::polaris(), |comm| {
        // 1. Build the simulation (NekRS analogue) for this rank's slab.
        let mut params = CaseParams::pb146_default();
        params.elems = [4, 4, 6];
        let mut solver = pb146(&params, 30).build(comm);

        // 2. Initialize the bridge (paper Listing 3) and the snapshot
        //    data plane (geometry cached once, staging buffers pooled).
        let mut bridge = Bridge::initialize(comm, CONFIG, &[]).expect("valid config");
        let plane = SnapshotPlane::new(comm, &solver);

        // 3. Main loop: step; when an analysis triggers, publish exactly
        //    the fields it needs and hand the snapshot to SENSEI.
        for step in 1..=20u64 {
            solver.step(comm);
            if bridge.triggers_at(step) {
                let mut adaptor = plane.publish(comm, &mut solver, bridge.arrays_at(step));
                bridge
                    .update(comm, step, &mut adaptor)
                    .expect("in situ update");
            }
        }
        bridge.finalize(comm).expect("finalize");

        (
            comm.rank(),
            solver.kinetic_energy(comm),
            comm.now(),
            bridge.analyses().execution_counts(),
        )
    });

    for (rank, ke, vtime, counts) in &reports {
        println!(
            "rank {rank}: kinetic energy {ke:.4}, virtual time {vtime:.4}s, \
             analysis executions {counts:?}"
        );
    }
    println!("stats ran every 5 steps (4×), histogram every 10 (2×) — all from XML.");
}
