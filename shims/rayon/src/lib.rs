//! Offline stand-in for the `rayon` subset this workspace uses:
//! `par_chunks` / `par_chunks_mut` from the prelude — backed by a real
//! work-distributing thread pool.
//!
//! Unlike the original sequential shim, chunks are now executed on a
//! fixed pool of worker threads (sized from `available_parallelism`, or
//! `NEK_POOL_THREADS` / `RAYON_NUM_THREADS` when set). The design keeps
//! three properties the workspace depends on:
//!
//! * **Bitwise determinism.** Work is split into the same chunks as the
//!   sequential iterators, each chunk writes only its own output slice,
//!   and the arithmetic inside a chunk is untouched — so results are
//!   bit-identical for any pool size, including 1.
//! * **One shared pool.** commsim runs one thread per simulated rank;
//!   all ranks submit to the same global pool so N ranks do not spawn
//!   N×cores workers. Rank threads inherit the submitting thread's
//!   [`pool::with_threads`] override (the commsim runner propagates it).
//! * **Zero steady-state allocation.** A `for_each` batch lives on the
//!   submitting thread's stack; the job queue holds raw batch pointers
//!   in a pre-reserved ring, so hot-loop submissions do not touch the
//!   heap.
//!
//! Panics inside a chunk poison the batch (remaining chunks are drained
//! unexecuted), and the first panic payload is re-raised on the
//! submitting thread once all workers have detached from the batch.

/// The work-distributing thread pool behind `par_chunks{,_mut}`.
pub mod pool {
    use std::any::Any;
    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};
    use std::thread::{self, Thread};
    use std::time::Duration;

    /// Hard cap on spawned workers (guards absurd env-var values).
    const MAX_WORKERS: usize = 256;

    /// One `for_each` submission. Lives on the submitting thread's stack;
    /// `pending` counts one unit per queued helper entry plus one for the
    /// submitter, and `run` does not return until it reaches zero, so no
    /// worker ever touches a dead batch.
    struct Batch {
        job: &'static (dyn Fn(usize) + Sync),
        next: AtomicUsize,
        n_jobs: usize,
        pending: AtomicUsize,
        owner: Thread,
        poisoned: AtomicBool,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    #[derive(Clone, Copy)]
    struct BatchPtr(*const Batch);
    // SAFETY: the pointee is kept alive by the `pending` protocol above,
    // and `Batch` itself is only touched through &-references.
    unsafe impl Send for BatchPtr {}

    struct Shared {
        queue: Mutex<VecDeque<BatchPtr>>,
        available: Condvar,
        workers: Mutex<usize>,
    }

    fn shared() -> &'static Shared {
        static SHARED: OnceLock<Shared> = OnceLock::new();
        SHARED.get_or_init(|| Shared {
            // Pre-reserved so steady-state submissions never reallocate:
            // at most one entry per worker is outstanding per batch.
            queue: Mutex::new(VecDeque::with_capacity(4 * MAX_WORKERS)),
            available: Condvar::new(),
            workers: Mutex::new(0),
        })
    }

    fn ensure_workers(sh: &'static Shared, wanted: usize) {
        let wanted = wanted.min(MAX_WORKERS);
        let mut count = sh.workers.lock().unwrap();
        while *count < wanted {
            let idx = *count;
            thread::Builder::new()
                .name(format!("sem-pool-{idx}"))
                .stack_size(1 << 20)
                .spawn(move || worker_loop(shared()))
                .expect("spawn pool worker");
            *count += 1;
        }
    }

    fn worker_loop(sh: &'static Shared) {
        loop {
            let ptr = {
                let mut q = sh.queue.lock().unwrap();
                loop {
                    if let Some(p) = q.pop_front() {
                        break p;
                    }
                    q = sh.available.wait(q).unwrap();
                }
            };
            // SAFETY: we hold one `pending` unit for this entry; the
            // submitter keeps the batch alive until pending hits zero.
            let batch: &Batch = unsafe { &*ptr.0 };
            work_on(batch);
            // Clone the owner handle *before* releasing our unit — after
            // the fetch_sub the batch may be gone.
            let owner = batch.owner.clone();
            if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                owner.unpark();
            }
        }
    }

    /// Claim chunk indices until the batch is exhausted. On panic, poison
    /// the batch so remaining chunks are drained unexecuted and stash the
    /// first payload for the submitter to re-raise.
    fn work_on(batch: &Batch) {
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= batch.n_jobs {
                return;
            }
            if batch.poisoned.load(Ordering::Relaxed) {
                continue;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.job)(i))) {
                batch.poisoned.store(true, Ordering::Relaxed);
                let mut slot = batch.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Execute `job(0..n_jobs)` across the pool. The submitting thread
    /// always participates; with an effective size of 1 (the default on a
    /// single-core host) this is a plain sequential loop with no
    /// synchronization at all.
    pub fn run<F: Fn(usize) + Sync>(n_jobs: usize, job: F) {
        if n_jobs == 0 {
            return;
        }
        let threads = current_threads().max(1);
        let helpers = threads.saturating_sub(1).min(n_jobs - 1);
        if helpers == 0 {
            for i in 0..n_jobs {
                job(i);
            }
            return;
        }
        let sh = shared();
        ensure_workers(sh, helpers);
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: lifetime-erased borrow of a stack closure. The batch
        // protocol below guarantees every worker has made its last access
        // (pending == 0) before `run` returns, so the borrow never
        // outlives the closure.
        let job_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job_ref) };
        let batch = Batch {
            job: job_static,
            next: AtomicUsize::new(0),
            n_jobs,
            pending: AtomicUsize::new(helpers + 1),
            owner: thread::current(),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        };
        {
            let mut q = sh.queue.lock().unwrap();
            for _ in 0..helpers {
                q.push_back(BatchPtr(&batch));
            }
        }
        if helpers == 1 {
            sh.available.notify_one();
        } else {
            sh.available.notify_all();
        }
        work_on(&batch);
        if batch.pending.fetch_sub(1, Ordering::AcqRel) != 1 {
            // Timeout is a missed-unpark safety net, not the signal path.
            while batch.pending.load(Ordering::Acquire) != 0 {
                thread::park_timeout(Duration::from_micros(100));
            }
        }
        let payload = { batch.panic.lock().unwrap().take() };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Number of blocks [`run_partitioned`] will split `n_items` into on
    /// this thread: one per pool thread, never more than the item count.
    pub fn n_blocks(n_items: usize) -> usize {
        current_threads().max(1).min(n_items)
    }

    /// Bounds of block `b` when `0..n_items` is split into `nblocks`
    /// contiguous blocks whose sizes differ by at most one. Purely
    /// arithmetic, so the partition is identical on every thread and
    /// every run — the scheduling analogue of the deterministic
    /// chunk→output mapping `par_chunks` relies on.
    pub fn partition(n_items: usize, nblocks: usize, b: usize) -> (usize, usize) {
        debug_assert!(b < nblocks);
        let base = n_items / nblocks;
        let rem = n_items % nblocks;
        let start = b * base + b.min(rem);
        let len = base + usize::from(b < rem);
        (start, start + len)
    }

    /// Execute `job(block, start, end)` over a deterministic contiguous
    /// partition of `0..n_items` into [`n_blocks`] blocks — one pool job
    /// per *block* instead of one per item. This is the coarse-grained
    /// scheduling entry the SEM hot path uses: a whole operator
    /// application costs a single dispatch with `threads` jobs, instead
    /// of hundreds of element-sized chunks fighting over the batch
    /// counter. Block indices map 1:1 to jobs, so a caller may hand each
    /// block a private scratch slot with no cross-thread handoff.
    pub fn run_partitioned<F: Fn(usize, usize, usize) + Sync>(n_items: usize, job: F) {
        if n_items == 0 {
            return;
        }
        let nblocks = n_blocks(n_items);
        if nblocks == 1 {
            job(0, 0, n_items);
            return;
        }
        run(nblocks, |b| {
            let (start, end) = partition(n_items, nblocks, b);
            job(b, start, end);
        });
    }

    thread_local! {
        /// Per-thread pool-size override; 0 means "use the default".
        static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    }

    /// Process-wide default pool size: `NEK_POOL_THREADS`, then
    /// `RAYON_NUM_THREADS`, then `available_parallelism`.
    pub fn default_threads() -> usize {
        static DEFAULT: OnceLock<usize> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            for var in ["NEK_POOL_THREADS", "RAYON_NUM_THREADS"] {
                if let Some(n) = std::env::var(var)
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                {
                    if n >= 1 {
                        return n.min(MAX_WORKERS + 1);
                    }
                }
            }
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Pool size par calls from this thread will use.
    pub fn current_threads() -> usize {
        let o = OVERRIDE.with(|c| c.get());
        if o != 0 {
            o
        } else {
            default_threads()
        }
    }

    /// This thread's raw override (0 = none). The commsim runner reads
    /// this on the spawning thread and re-installs it inside each rank
    /// thread via [`with_override`], so `with_threads(n, || run_ranks(..))`
    /// applies to the ranks' par calls too.
    pub fn override_threads() -> usize {
        OVERRIDE.with(|c| c.get())
    }

    /// Run `f` with this thread's pool size forced to `n` (>= 1).
    pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        with_override(n.max(1), f)
    }

    /// Install `o` (0 clears) as this thread's override for `f`'s
    /// duration; restored even on panic.
    pub fn with_override<R>(o: usize, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = OVERRIDE.with(|c| {
            let p = c.get();
            c.set(o);
            p
        });
        let _restore = Restore(prev);
        f()
    }
}

/// Prelude mirroring `rayon::prelude` for the traits this workspace uses.
pub mod prelude {
    use crate::pool;

    /// Raw-pointer wrapper so disjoint mutable chunks can be handed to
    /// worker threads.
    struct SendPtr<T>(*mut T);
    // SAFETY: each job index derives a disjoint subslice from the base
    // pointer; no two jobs alias.
    unsafe impl<T: Send> Send for SendPtr<T> {}
    unsafe impl<T: Send> Sync for SendPtr<T> {}

    impl<T> SendPtr<T> {
        // Accessor (rather than field access) so closures capture the
        // whole wrapper, keeping its Send/Sync impls in effect.
        fn get(&self) -> *mut T {
            self.0
        }
    }

    fn n_chunks(len: usize, size: usize) -> usize {
        len.div_ceil(size)
    }

    /// Parallel iterator over `size`-sized chunks of a shared slice.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    /// Parallel iterator over `size`-sized chunks of a mutable slice.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    /// `ParChunksMut` zipped with `ParChunks`, pairing chunk i with chunk i.
    pub struct ZipMut<'a, 'b, T, U> {
        a: ParChunksMut<'a, T>,
        b: ParChunks<'b, U>,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Apply `f` to every chunk, distributed across the pool.
        pub fn for_each<F: Fn(&[T]) + Sync>(self, f: F) {
            let (slice, size) = (self.slice, self.size);
            pool::run(n_chunks(slice.len(), size), |i| {
                let start = i * size;
                let end = (start + size).min(slice.len());
                f(&slice[start..end]);
            });
        }
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair with the chunks of a shared slice (rayon's `zip`).
        pub fn zip<'b, U>(self, other: ParChunks<'b, U>) -> ZipMut<'a, 'b, T, U> {
            ZipMut { a: self, b: other }
        }

        /// Apply `f` to every chunk, distributed across the pool.
        pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
            let size = self.size;
            let len = self.slice.len();
            let base = SendPtr(self.slice.as_mut_ptr());
            pool::run(n_chunks(len, size), |i| {
                let start = i * size;
                let end = (start + size).min(len);
                // SAFETY: job i touches only [start, end); chunks are
                // disjoint by construction.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(chunk);
            });
        }
    }

    impl<'a, 'b, T: Send, U: Sync> ZipMut<'a, 'b, T, U> {
        /// Apply `f` to each `(mut_chunk, shared_chunk)` pair.
        pub fn for_each<F: Fn((&mut [T], &[U])) + Sync>(self, f: F) {
            let (a_size, a_len) = (self.a.size, self.a.slice.len());
            let (b_size, b_len) = (self.b.size, self.b.slice.len());
            let n = n_chunks(a_len, a_size).min(n_chunks(b_len, b_size));
            let base = SendPtr(self.a.slice.as_mut_ptr());
            let b = self.b.slice;
            pool::run(n, |i| {
                let astart = i * a_size;
                let aend = (astart + a_size).min(a_len);
                let bstart = i * b_size;
                let bend = (bstart + b_size).min(b_len);
                // SAFETY: job i touches only its own output range.
                let ac = unsafe {
                    std::slice::from_raw_parts_mut(base.get().add(astart), aend - astart)
                };
                f((ac, &b[bstart..bend]));
            });
        }
    }

    /// `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        /// Parallel iterator over `size`-sized chunks of the slice.
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    /// `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Parallel iterator over `size`-sized mutable chunks of the slice.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ParChunks { slice: self, size }
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ParChunksMut { slice: self, size }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::pool;
    use super::prelude::*;

    #[test]
    fn chunked_zip_matches_sequential() {
        let src = [1.0f64, 2.0, 3.0, 4.0];
        let mut dst = [0.0f64; 4];
        dst.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(d, s)| {
                for (di, si) in d.iter_mut().zip(s) {
                    *di = si * 2.0;
                }
            });
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let n = 10_007; // deliberately not a multiple of the chunk size
        let src: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let run = |threads: usize| {
            pool::with_threads(threads, || {
                let mut dst = vec![0.0f64; n];
                dst.par_chunks_mut(64)
                    .zip(src.par_chunks(64))
                    .for_each(|(d, s)| {
                        for (di, si) in d.iter_mut().zip(s) {
                            *di = si * 1.5 + 0.25;
                        }
                    });
                dst
            })
        };
        let seq = run(1);
        for threads in [2, 3, 8] {
            let par = run(threads);
            assert!(
                seq.iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "pool size {threads} changed results"
            );
        }
    }

    #[test]
    fn uneven_tail_chunk_is_processed() {
        pool::with_threads(4, || {
            let mut v = vec![0u64; 130]; // 130 = 2*64 + tail of 2
            v.par_chunks_mut(64).for_each(|c| {
                for x in c.iter_mut() {
                    *x = 7;
                }
            });
            assert!(v.iter().all(|&x| x == 7));
        });
    }

    #[test]
    fn panic_in_chunk_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            pool::with_threads(4, || {
                let mut v = vec![0.0f64; 256];
                v.par_chunks_mut(16).for_each(|c| {
                    if c[0] == 0.0 {
                        panic!("poisoned worker");
                    }
                });
            });
        });
        let err = result.expect_err("panic should propagate to the submitter");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poisoned worker"), "unexpected payload: {msg}");

        // The pool must stay usable after a poisoned batch.
        pool::with_threads(4, || {
            let mut v = [0u8; 64];
            v.par_chunks_mut(8)
                .for_each(|c| c.iter_mut().for_each(|x| *x = 1));
            assert!(v.iter().all(|&x| x == 1));
        });
    }

    #[test]
    fn partition_is_exhaustive_and_balanced() {
        for n in [0usize, 1, 5, 7, 64, 1000] {
            for nb in 1..=8usize.min(n.max(1)) {
                let mut covered = 0usize;
                let mut sizes = Vec::new();
                for b in 0..nb {
                    let (s, e) = pool::partition(n, nb, b);
                    assert_eq!(s, covered, "blocks must be contiguous");
                    covered = e;
                    sizes.push(e - s);
                }
                assert_eq!(covered, n, "blocks must cover 0..{n}");
                let (lo, hi) = (
                    sizes.iter().min().copied().unwrap_or(0),
                    sizes.iter().max().copied().unwrap_or(0),
                );
                assert!(hi - lo <= 1, "n={n} nb={nb}: sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn run_partitioned_visits_every_item_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for threads in [1usize, 3, 4] {
            pool::with_threads(threads, || {
                let n = 101;
                let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
                // Capture on the submitting thread: the width override is
                // thread-local and pool workers don't see it.
                let nb = pool::n_blocks(n);
                pool::run_partitioned(n, |b, start, end| {
                    assert!(b < nb);
                    for h in &hits[start..end] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads}: every item must be visited exactly once"
                );
            });
        }
    }

    #[test]
    fn run_partitioned_block_index_is_private_per_job() {
        // Each block writes only its own slot; no slot is written twice.
        pool::with_threads(4, || {
            let n = 37;
            let nb = pool::n_blocks(n);
            let mut slots = vec![0usize; nb];
            let base = slots.as_mut_ptr() as usize;
            pool::run_partitioned(n, move |b, start, end| {
                // SAFETY: block b is handed to exactly one job.
                unsafe { *(base as *mut usize).add(b) = end - start };
            });
            assert_eq!(slots.iter().sum::<usize>(), n);
            assert!(slots.iter().all(|&s| s > 0));
        });
    }

    #[test]
    fn override_nests_and_restores() {
        assert_eq!(pool::override_threads(), 0);
        pool::with_threads(3, || {
            assert_eq!(pool::current_threads(), 3);
            pool::with_threads(1, || assert_eq!(pool::current_threads(), 1));
            assert_eq!(pool::current_threads(), 3);
        });
        assert_eq!(pool::override_threads(), 0);
    }
}
