//! Offline stand-in for the `rayon` subset this workspace uses:
//! `par_chunks` / `par_chunks_mut` from the prelude.
//!
//! The shim returns std's sequential `Chunks` / `ChunksMut` iterators,
//! whose `zip` / `for_each` combinators match the rayon call sites
//! verbatim. Virtual-clock cost modelling in commsim charges for the
//! parallel speedup explicitly, so sequential execution here changes
//! wall-clock only, not simulated results.

/// Prelude mirroring `rayon::prelude` for the traits this workspace uses.
pub mod prelude {
    /// `par_chunks` over shared slices (sequential in this shim).
    pub trait ParallelSlice<T> {
        /// Iterate over `size`-sized chunks of the slice.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `par_chunks_mut` over mutable slices (sequential in this shim).
    pub trait ParallelSliceMut<T> {
        /// Iterate over `size`-sized mutable chunks of the slice.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_zip_matches_sequential() {
        let src = [1.0f64, 2.0, 3.0, 4.0];
        let mut dst = [0.0f64; 4];
        dst.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(d, s)| {
                for (di, si) in d.iter_mut().zip(s) {
                    *di = si * 2.0;
                }
            });
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0]);
    }
}
