//! Offline stand-in for the `bytes` crate subset this workspace uses:
//! little-endian `put_*`/`get_*` cursor buffers for the BP4-like frame
//! codec in `transport::bp`.
//!
//! `BytesMut` is a growable `Vec<u8>` writer; `Bytes` is an owned buffer
//! with a read cursor. Underflow on `get_*` panics, matching the real
//! crate — callers bound-check with `remaining()` first.

use std::ops::Deref;

/// Read cursor over an owned byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy `src` into a fresh buffer with the cursor at the start.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unread portion as a slice.
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copy the unread portion out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.data.len() - self.pos >= n,
            "advance out of bounds: need {n}, have {}",
            self.data.len() - self.pos
        );
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

/// Read-side accessors (trait kept so `use bytes::Buf` keeps working).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Split off the next `n` bytes as an owned buffer. Panics on underflow.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Skip `n` bytes. Panics on underflow.
    fn advance(&mut self, n: usize);
    /// Read one byte. Panics on underflow.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`. Panics on underflow.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian `f32`. Panics on underflow.
    fn get_f32_le(&mut self) -> f32;
    /// Read a little-endian `f64`. Panics on underflow.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes {
            data: self.take(n).to_vec(),
            pos: 0,
        }
    }

    fn advance(&mut self, n: usize) {
        self.take(n);
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Convert into a read buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors (trait kept so `use bytes::BufMut` keeps working).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.copy_to_bytes(4).to_vec(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        r.get_u32_le();
    }

    #[test]
    fn deref_and_to_vec() {
        let mut w = BytesMut::with_capacity(8);
        w.put_slice(&[1, 2, 3]);
        assert_eq!(&w[..], &[1, 2, 3]);
        assert_eq!(w.to_vec(), vec![1, 2, 3]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let f = w.freeze();
        assert_eq!(f.chunk(), &[1, 2, 3]);
    }
}
