//! The [`Strategy`] trait and the generators this workspace uses:
//! numeric ranges, tuples, `Just`, string patterns, map/flat_map.

use crate::test_runner::TestRng;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Numeric types drawable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let v = lo + (rng.next_f64() as $t) * (hi - lo);
                // Rounding at the top of a huge span can land exactly on
                // `hi`; half-open means it must not.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String patterns: a `&str` is itself a strategy for `String`.
///
/// The shim understands the single form this workspace uses —
/// `"[<class>]{lo,hi}"` with a character class of literals and
/// `a-b` ranges. Unrecognised patterns fall back to printable ASCII of
/// length 0–32.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
                (0..len)
                    .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
                    .collect()
            }
            _ => {
                let len = (rng.next_u64() % 33) as usize;
                (0..len)
                    .map(|_| char::from(b' ' + (rng.next_u64() % 95) as u8))
                    .collect()
            }
        }
    }
}

/// Parse `[<class>]{lo,hi}` / `[<class>]{n}` into (alphabet, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = reps.parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(1234)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (0u8..=255).generate(&mut r);
            let _ = w; // full domain: any value is in range
            let f = (-2.5..7.5f64).generate(&mut r);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut r = rng();
        let (a, b, c) = (1usize..4, Just(9u8), -1.0..1.0f64).generate(&mut r);
        assert!((1..4).contains(&a));
        assert_eq!(b, 9);
        assert!((-1.0..1.0).contains(&c));
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0.0..1.0f64, n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..50 {
            let (n, len) = s.generate(&mut r);
            assert_eq!(n, len);
        }
    }

    #[test]
    fn string_pattern_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,64}".generate(&mut r);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_class_repeat("hello").is_none());
        assert!(parse_class_repeat("[a-z]").is_none());
        let (chars, lo, hi) = parse_class_repeat("[a-c]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (2, 5));
        let (chars, lo, hi) = parse_class_repeat("[xy]{3}").unwrap();
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((lo, hi), (3, 3));
    }
}
