//! Deterministic RNG, run configuration, and case-failure plumbing.

use std::fmt;

/// SplitMix64 — tiny, fast, and deterministic across platforms.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG whose whole stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            // Avoid the all-zeros fixed point without disturbing other seeds.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test's full path: stable across runs and platforms,
/// distinct per test.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run configuration; only `cases` is meaningful in this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// `prop_assume!` filtered the case out; the runner skips it.
    Reject,
}

impl TestCaseError {
    /// A failing case carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A filtered-out case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// True for `prop_assume!` rejections.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        let mut c = TestRng::from_seed(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a::b"), seed_from_name("a::c"));
    }
}
