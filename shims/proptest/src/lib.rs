//! Offline stand-in for the `proptest` subset this workspace uses.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy) {..} }` macro form, range / tuple / `Just` / string-pattern
//! strategies, `collection::vec`, `prop_map` / `prop_flat_map`, and the
//! `prop_assert*` family. Differences from the real crate, deliberate
//! for an offline shim:
//!
//! * generation is seeded deterministically from the test's module path
//!   and name, so every run (and every machine) sees the same cases;
//! * failing cases are reported but not shrunk.

pub mod strategy;

pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements parameter for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Choose a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy producing a `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare deterministic property tests. Mirrors the real macro's
/// `#![proptest_config(..)]` header and `arg in strategy` signatures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_seed(
                $crate::test_runner::seed_from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                )),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(__e) if __e.is_reject() => {}
                    ::std::result::Result::Err(__e) => ::std::panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
