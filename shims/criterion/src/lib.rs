//! Offline stand-in for the `criterion` subset this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and `black_box`.
//!
//! Instead of criterion's adaptive sampling and statistics, each
//! benchmark runs one warm-up iteration plus a small fixed batch and
//! prints the mean wall time — enough to eyeball regressions and to keep
//! `cargo bench` fast on the simulated whole-run benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark label: a function name plus a parameter tag.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label the benchmark `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept and ignore CLI configuration (API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id.to_string(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run `f` as a benchmark under this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.sample_size, f);
        self
    }

    /// Run `f` as a benchmark, passing `input` through.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Explicitly end the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: String, sample_size: usize, mut f: F) {
    // Cap the batch well below criterion's defaults: several benches wrap
    // entire simulated runs, and the point here is a smoke signal.
    let iters = sample_size.clamp(1, 10) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let full = if group.is_empty() {
        label
    } else {
        format!("{group}/{label}")
    };
    println!("bench {full:<48} {:>12.3} ms/iter (n={iters})", mean * 1e3);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        // 1 warm-up + 5 timed.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_label(), "f/32");
    }
}
