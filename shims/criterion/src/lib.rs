//! Offline stand-in for the `criterion` subset this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and `black_box`.
//!
//! Instead of criterion's adaptive sampling, each benchmark runs one
//! untimed warm-up iteration and then a small fixed number of
//! individually timed samples on the monotonic clock, reporting the
//! median and the median absolute deviation (MAD) — robust statistics
//! that shrug off the occasional scheduler hiccup while keeping
//! `cargo bench` fast on the simulated whole-run benches. The same
//! [`measure`] harness backs the `perf_report` binary.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Robust wall-clock statistics over independent samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Median absolute deviation from the median, in seconds.
    pub mad_s: f64,
    /// Number of timed samples.
    pub n: usize,
}

/// Run `warmup` untimed calls, then `samples` individually timed calls of
/// `f` on the monotonic clock; return median/MAD over the samples.
pub fn measure<O, F: FnMut() -> O>(warmup: usize, samples: usize, mut f: F) -> Stats {
    for _ in 0..warmup {
        black_box(f());
    }
    let n = samples.max(1);
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    let median_s = median(&mut times);
    let mut dev: Vec<f64> = times.iter().map(|&t| (t - median_s).abs()).collect();
    let mad_s = median(&mut dev);
    Stats { median_s, mad_s, n }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measure `f`: one untimed warm-up call, then `samples` individually
    /// timed calls; median/MAD are recorded for the report line.
    pub fn iter<O, F: FnMut() -> O>(&mut self, f: F) {
        self.stats = Some(measure(1, self.samples, f));
    }
}

/// Benchmark label: a function name plus a parameter tag.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label the benchmark `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept and ignore CLI configuration (API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id.to_string(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run `f` as a benchmark under this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.sample_size, f);
        self
    }

    /// Run `f` as a benchmark, passing `input` through.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Explicitly end the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: String, sample_size: usize, mut f: F) {
    // Cap the sample count well below criterion's defaults: several
    // benches wrap entire simulated runs, and the point here is a smoke
    // signal with honest statistics.
    let samples = sample_size.clamp(1, 10);
    let mut b = Bencher {
        samples,
        stats: None,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label
    } else {
        format!("{group}/{label}")
    };
    match b.stats {
        Some(Stats { median_s, mad_s, n }) => println!(
            "bench {full:<48} {:>12.3} ms/iter (median, ±{:.3} MAD, n={n})",
            median_s * 1e3,
            mad_s * 1e3
        ),
        None => println!("bench {full:<48} (no measurement: closure never called iter)"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        // 1 warm-up + 5 timed samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn measure_reports_robust_stats() {
        let stats = measure(2, 5, || {
            std::thread::sleep(std::time::Duration::from_micros(200))
        });
        assert_eq!(stats.n, 5);
        assert!(stats.median_s >= 200e-6, "median {}", stats.median_s);
        assert!(stats.mad_s >= 0.0);
        // MAD is robust: it must stay well below the median for a steady
        // workload even if one sample is slow.
        assert!(stats.mad_s <= stats.median_s);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_label(), "f/32");
    }
}
