//! Offline stand-in for the `parking_lot` subset this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors
//! API-compatible shims for its external dependencies (see
//! `DESIGN.md` § "Offline dependency shims"). This one wraps
//! `std::sync` primitives and reproduces the two parking_lot behaviors
//! the codebase relies on:
//!
//! * **no poisoning** — a rank thread that panics while holding a lock
//!   must not wedge the other ranks (the commsim runner poisons the
//!   *world*, not the mutex, and expects `lock()` to keep working);
//! * **guard-based waits** — `Condvar::wait_for` takes `&mut MutexGuard`
//!   instead of consuming the guard.

use std::time::Duration;

/// A mutual exclusion primitive: `std::sync::Mutex` minus poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a panic
    /// in another holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait_for`]
/// temporarily hand the std guard to `std::sync::Condvar` and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Outcome of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's guard-borrowing API.
pub struct Condvar {
    cv: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self {
            cv: std::sync::Condvar::new(),
        }
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }

    /// Block on the condvar for at most `timeout`, releasing the guard's
    /// lock while waiting and reacquiring it before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.cv.wait_timeout(inner, timeout) {
            Ok(pair) => pair,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Block on the condvar until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = match self.cv.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Reader-writer lock: `std::sync::RwLock` minus poisoning.
pub struct RwLock<T: ?Sized> {
    // std::sync::RwLock read() panics if the *current* thread holds the
    // write lock; parking_lot deadlocks instead. Neither occurs in this
    // workspace, so the std behavior is acceptable.
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("deliberate");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn wait_for_times_out_and_reacquires() {
        let m = Mutex::new(5);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert_eq!(*g, 5);
    }

    #[test]
    fn notify_wakes_waiter() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            let deadline = Instant::now() + Duration::from_secs(5);
            while !*g {
                cv.wait_for(&mut g, Duration::from_millis(50));
                assert!(Instant::now() < deadline, "missed wakeup");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*state;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
