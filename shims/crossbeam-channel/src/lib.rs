//! Offline stand-in for the `crossbeam-channel` subset this workspace
//! uses: MPMC `unbounded`/`bounded` channels with `send`, `try_send`,
//! `send_timeout`, `recv`, `try_recv`, and `recv_timeout`.
//!
//! Built on a `Mutex<VecDeque>` + two condvars. Matches crossbeam's
//! observable semantics where the workspace depends on them:
//!
//! * receivers drain remaining messages after all senders drop, and only
//!   then report `Disconnected`;
//! * senders report `Disconnected` as soon as every receiver is gone;
//! * both endpoints are `Clone` (multi-producer, multi-consumer).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

impl<T> State<T> {
    fn full(&self) -> bool {
        self.cap.is_some_and(|c| self.queue.len() >= c)
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // The queue holds plain data; a panic mid-mutation cannot leave it
        // torn, so std poisoning is safely ignored (matches crossbeam).
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded MPMC channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if !st.full() {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = match self.shared.not_full.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.full() {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send, blocking at most `timeout` while the channel is full.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if !st.full() {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _res) = match self.shared.not_full.wait_timeout(st, deadline - now) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            st = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = match self.shared.not_empty.wait_timeout(st, deadline - now) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            st = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, _rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
    }

    #[test]
    fn drain_after_sender_drop_then_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(1)),
            Err(SendTimeoutError::Disconnected(2))
        ));
    }

    #[test]
    fn send_timeout_times_out() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let start = Instant::now();
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        ));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(1);
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv_timeout(Duration::from_secs(5)) {
                got.push(v);
                if got.len() == 10 {
                    break;
                }
            }
            got
        });
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(t.join().unwrap(), (0..10).collect::<Vec<_>>());
    }
}
