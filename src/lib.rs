//! Umbrella crate for the NekRS–SENSEI reproduction stack: re-exports
//! every layer so examples and integration tests can use one dependency.
//!
//! Layer map (bottom → top):
//!
//! | Crate | Paper analogue |
//! |---|---|
//! | [`memtrack`] | memory high-water instrumentation |
//! | [`commsim`] | MPI + Polaris/JUWELS machine models |
//! | [`devsim`] | OCCA device abstraction |
//! | [`meshdata`] | VTK data model + VTU/PVTU files |
//! | [`sem`] | NekRS (spectral-element Navier–Stokes) |
//! | [`insitu`] | SENSEI (generic in situ interface) |
//! | [`render`] | ParaView Catalyst / OSPRay rendering |
//! | [`transport`] | ADIOS2 SST / BP staging |
//! | [`nek_sensei`] | the paper's coupling layer + experiment drivers |
//!
//! See `README.md` for the quickstart and `DESIGN.md` / `EXPERIMENTS.md`
//! for the substitution methodology and the per-figure results.

pub use commsim;
pub use devsim;
pub use insitu;
pub use memtrack;
pub use meshdata;
pub use nek_sensei;
pub use render;
pub use sem;
pub use transport;
