//! End-to-end crash → restore → complete: a supervised run is killed
//! mid-flight by an injected rank crash, the supervisor restores every
//! rank from the newest CRC-valid checkpoint generation, and the run
//! finishes with the recovery fully visible in the RunReport.

use commsim::{CheckpointCorruption, FaultPlan, MachineModel, SimRankCrash};
use nek_sensei::{
    run_supervised_insitu, run_supervised_intransit, EndpointMode, ExecMode, FailureKind,
    InSituConfig, InSituMode, InTransitConfig, RecoveryOptions, SupervisorConfig,
};
use sem::cases::{pb146, rbc, CaseParams};
use telemetry::EventKind;
use transport::{QueuePolicy, StagingLink, WriterConfig};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("crash_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn insitu_cfg(steps: usize, faults: FaultPlan) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 4),
        ranks: 2,
        steps,
        trigger_every: 2,
        machine: MachineModel::test_tiny(),
        image_size: (32, 24),
        mode: InSituMode::Original,
        exec: ExecMode::Synchronous,
        sched: Default::default(),
        faults,
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: RecoveryOptions::default(),
    }
}

#[test]
fn insitu_crash_restores_and_completes_with_one_recovery() {
    let dir = scratch("insitu");
    let faults = FaultPlan {
        sim_crashes: vec![SimRankCrash {
            rank: 1,
            at_step: 5,
        }],
        ..FaultPlan::none()
    };
    let sup = SupervisorConfig::new(dir.clone(), 2);
    let out = run_supervised_insitu(&insitu_cfg(8, faults), &sup);

    assert_eq!(out.report.steps, 8, "the run completes despite the crash");
    assert_eq!(out.recovery.restarts, 1);
    assert_eq!(out.recovery.outcomes[0].failure, FailureKind::InjectedCrash);
    assert_eq!(out.recovery.outcomes[0].resumed_from, 4);
    assert!(out.recovery.lost_steps <= 2, "≤ one checkpoint interval");

    // Exactly one recovery in the RunReport: the fault fired, a restore
    // started, and it completed — all on the telemetry bus.
    let report = out.report.run_report.expect("supervision forces telemetry");
    let count = |kind: EventKind| report.events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(EventKind::RecoveryStarted), 1);
    assert_eq!(count(EventKind::RecoveryCompleted), 1);
    assert!(count(EventKind::FaultInjected) >= 1, "the crash is logged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_newest_generation_falls_back_to_older_one() {
    let dir = scratch("corrupt");
    // Bit-rot the newest generation before the crash: the recovery scan
    // must quarantine it and restore the older, still-valid one rather
    // than ever loading bytes that fail the manifest CRC.
    let faults = FaultPlan {
        sim_crashes: vec![SimRankCrash {
            rank: 0,
            at_step: 5,
        }],
        disk_corruptions: vec![CheckpointCorruption {
            rank: 1,
            at_step: 4,
        }],
        ..FaultPlan::none()
    };
    let sup = SupervisorConfig::new(dir.clone(), 2);
    let out = run_supervised_insitu(&insitu_cfg(8, faults), &sup);

    assert_eq!(out.report.steps, 8);
    assert_eq!(out.recovery.restarts, 1);
    let o = &out.recovery.outcomes[0];
    assert_eq!(o.resumed_from, 2, "generation 4 is rotten, 2 restores");
    assert!(
        o.quarantined.contains(&4),
        "the rotten generation quarantines"
    );
    assert!(!o.quarantined.contains(&o.resumed_from));
    assert!(out.recovery.quarantined >= 1);

    let report = out.report.run_report.expect("supervision forces telemetry");
    let quarantines = report
        .events
        .iter()
        .filter(|e| e.kind == EventKind::GenerationQuarantined)
        .count();
    assert_eq!(quarantines as u64, out.recovery.quarantined);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn intransit_crash_restores_and_completes_with_one_recovery() {
    let dir = scratch("intransit");
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    let cfg = InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps: 8,
        trigger_every: 2,
        machine: MachineModel::test_tiny(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Checkpointing,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (32, 24),
        output_dir: None,
        faults: FaultPlan {
            sim_crashes: vec![SimRankCrash {
                rank: 2,
                at_step: 5,
            }],
            ..FaultPlan::none()
        },
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: RecoveryOptions::default(),
    };
    let sup = SupervisorConfig::new(dir.clone(), 2);
    let out = run_supervised_intransit(&cfg, &sup);

    assert_eq!(out.report.steps, 8);
    assert_eq!(out.recovery.restarts, 1);
    assert_eq!(out.recovery.outcomes[0].failure, FailureKind::InjectedCrash);
    assert!(out.recovery.lost_steps <= 2, "≤ one checkpoint interval");
    let report = out.report.run_report.expect("supervision forces telemetry");
    let count = |kind: EventKind| report.events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(EventKind::RecoveryStarted), 1);
    assert_eq!(count(EventKind::RecoveryCompleted), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
