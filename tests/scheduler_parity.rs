//! Differential parity: the discrete-event rank scheduler versus the
//! rank-per-thread executor. Event mode reuses the exact rendezvous code
//! and only changes *how* ranks block, so every observable — solver field
//! bytes, virtual clocks, CommStats, rendered images, fault outcomes,
//! recovery stats — must be bitwise identical across the two modes.
//!
//! The binary also carries the scale smokes: the paper's 1120-rank pb146
//! cell actually executing under the event scheduler, and a 10k-virtual-
//! rank world that thread mode refuses outright.

use commsim::{
    run_ranks_with_registry, with_mode, EventExecutor, Executor, FaultPlan, LinkFaultSpec,
    MachineModel, SchedMode, SimRankCrash, ThreadExecutor, THREAD_MODE_DEFAULT_MAX_RANKS,
};
use memtrack::alloc::{global_peak, reset_peak};
use memtrack::{Registry, TrackingAllocator};
use nek_sensei::{
    run_insitu, run_intransit, run_supervised_insitu, EndpointMode, ExecMode, InSituConfig,
    InSituMode, InTransitConfig, SupervisorConfig,
};
use sem::cases::{pb146, rbc, CaseParams};
use sem::navier_stokes::FieldId;
use transport::{QueuePolicy, StagingLink, WriterConfig};

// The 10k-rank smoke bounds real heap growth, so this binary installs the
// process-wide tracking allocator (each integration test file is its own
// binary; the counters are atomic and cost nothing measurable).
#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

/// FNV-1a 64 — the same dependency-free hash the golden-image suite pins.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_f64s(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sched-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Hash every file in `dir` (sorted by name) into `(name, fnv1a64)` pairs.
fn hash_dir(dir: &std::path::Path) -> Vec<(String, u64)> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("output dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let bytes = std::fs::read(&p).expect("read artifact");
            (name, fnv1a64(&bytes))
        })
        .collect()
}

// ---- direct world: solver fields, clocks, stats ------------------------

/// The strongest form of the parity claim: step a real solver on a raw
/// rank world in both modes and compare the per-rank *field bytes* (all
/// velocity components + pressure), final virtual clock bits, and comm
/// counters. Nothing is aggregated, so a single reordered message or a
/// single ULP of drift anywhere fails loudly.
#[test]
fn solver_fields_clocks_and_stats_are_bitwise_identical() {
    let cell = |mode: SchedMode| {
        with_mode(mode, || {
            run_ranks_with_registry(4, MachineModel::test_tiny(), Registry::new(), |comm| {
                let mut params = CaseParams::pb146_default();
                params.elems = [2, 2, 4];
                params.order = 2;
                let mut solver = pb146(&params, 8).build(comm);
                for _ in 0..6 {
                    solver.step(comm);
                }
                let mut hashes = Vec::new();
                for id in [
                    FieldId::VelX,
                    FieldId::VelY,
                    FieldId::VelZ,
                    FieldId::Pressure,
                ] {
                    let f = solver.field_device(id).expect("field exists");
                    hashes.push(hash_f64s(f));
                }
                hashes
            })
        })
    };
    let a = cell(SchedMode::Thread);
    let b = cell(SchedMode::Event);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(
            x.time.to_bits(),
            y.time.to_bits(),
            "rank {}: virtual end time must be bitwise identical",
            x.rank
        );
        assert_eq!(x.stats, y.stats, "rank {}: CommStats must match", x.rank);
        assert_eq!(
            x.value, y.value,
            "rank {}: solver field bytes must be bitwise identical",
            x.rank
        );
    }
}

// ---- in situ workflows: metrics and golden images ----------------------

fn insitu_cfg(mode: InSituMode, exec: ExecMode, sched: SchedMode) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 8),
        ranks: 2,
        steps: 4,
        trigger_every: 2,
        machine: MachineModel::test_tiny(),
        image_size: (64, 48),
        mode,
        exec,
        sched,
        faults: FaultPlan::none(),
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// pb146 Catalyst through the full in situ driver, synchronous and
/// pipelined: run-level metrics and every rendered PNG must agree
/// byte-for-byte across schedulers. Pipelined runs cross *two* rank
/// worlds over std channels, so this also covers the external-wait path.
#[test]
fn insitu_catalyst_parity_sync_and_pipelined() {
    for exec in [ExecMode::Synchronous, ExecMode::Pipelined] {
        let run = |sched: SchedMode| {
            let dir = scratch(&format!("insitu-{exec:?}-{}", sched.label()));
            let mut cfg = insitu_cfg(InSituMode::Catalyst, exec, sched);
            cfg.output_dir = Some(dir.clone());
            let r = run_insitu(&cfg);
            let images = hash_dir(&dir);
            let _ = std::fs::remove_dir_all(&dir);
            (r, images)
        };
        let (a, ia) = run(SchedMode::Thread);
        let (b, ib) = run(SchedMode::Event);
        assert_eq!(
            a.metrics.time_to_solution.to_bits(),
            b.metrics.time_to_solution.to_bits(),
            "{exec:?}: time to solution"
        );
        assert_eq!(a.metrics.totals, b.metrics.totals, "{exec:?}: CommStats");
        assert_eq!(a.bytes_written, b.bytes_written, "{exec:?}");
        assert_eq!(a.files_written, b.files_written, "{exec:?}");
        assert!(!ia.is_empty(), "{exec:?}: Catalyst must render images");
        assert_eq!(ia, ib, "{exec:?}: golden images must match across modes");
    }
}

// ---- in transit: two worlds over crossbeam channels --------------------

fn intransit_cfg(steps: usize, sched: SchedMode, faults: FaultPlan) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps,
        trigger_every: 2,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Catalyst,
        sched,
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (64, 48),
        output_dir: None,
        faults,
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// RBC in transit: simulation world and endpoint world coupled by the
/// staging link, rendered frames and sim-side metrics compared across
/// schedulers.
#[test]
fn intransit_catalyst_parity() {
    let run = |sched: SchedMode| {
        let dir = scratch(&format!("intransit-{}", sched.label()));
        let mut cfg = intransit_cfg(4, sched, FaultPlan::none());
        cfg.output_dir = Some(dir.clone());
        let r = run_intransit(&cfg);
        let images = hash_dir(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        (r, images)
    };
    let (a, ia) = run(SchedMode::Thread);
    let (b, ib) = run(SchedMode::Event);
    assert_eq!(a.endpoint_steps, b.endpoint_steps);
    assert_eq!(a.endpoint_bytes_received, b.endpoint_bytes_received);
    assert_eq!(a.endpoint_delivered, b.endpoint_delivered);
    assert_eq!(
        a.sim.time_to_solution.to_bits(),
        b.sim.time_to_solution.to_bits(),
        "sim-world virtual time"
    );
    assert_eq!(a.sim.totals, b.sim.totals, "sim-world CommStats");
    assert!(!ia.is_empty(), "endpoint must render");
    assert_eq!(ia, ib, "endpoint images must match across modes");
}

/// Degraded scenario: a seeded lossy link forces CRC rejects and
/// retransmits. The fault schedule is derived from (seed, step, producer)
/// — never wall time — so both modes must degrade *identically*.
#[test]
fn degraded_link_fault_outcomes_match() {
    let run = |sched: SchedMode| {
        run_intransit(&intransit_cfg(
            8,
            sched,
            FaultPlan::with_link(
                5,
                LinkFaultSpec {
                    corrupt_prob: 0.3,
                    ..LinkFaultSpec::default()
                },
            ),
        ))
    };
    let a = run(SchedMode::Thread);
    let b = run(SchedMode::Event);
    assert!(a.endpoint_corrupt_rejected > 0, "faults must actually fire");
    assert_eq!(a.endpoint_corrupt_rejected, b.endpoint_corrupt_rejected);
    assert_eq!(a.endpoint_steps, b.endpoint_steps);
    assert_eq!(a.endpoint_partial_steps, b.endpoint_partial_steps);
    assert_eq!(a.degradation, b.degradation, "degradation ladder state");
    assert_eq!(
        a.sim.time_to_solution.to_bits(),
        b.sim.time_to_solution.to_bits()
    );
}

/// Supervised crash-recovery: an injected rank crash kills the run, the
/// supervisor restores from the newest checkpoint generation, and the
/// recovery trajectory (restart count, resume step, lost steps) plus the
/// completed run's metrics must be identical across schedulers.
#[test]
fn supervised_crash_recovery_parity() {
    let run = |sched: SchedMode| {
        let dir = scratch(&format!("recovery-{}", sched.label()));
        let mut cfg = insitu_cfg(InSituMode::Original, ExecMode::Synchronous, sched);
        cfg.steps = 8;
        cfg.faults = FaultPlan {
            sim_crashes: vec![SimRankCrash {
                rank: 1,
                at_step: 5,
            }],
            ..FaultPlan::none()
        };
        let out = run_supervised_insitu(&cfg, &SupervisorConfig::new(dir.clone(), 2));
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let a = run(SchedMode::Thread);
    let b = run(SchedMode::Event);
    assert_eq!(a.recovery.restarts, 1, "the crash must fire");
    assert_eq!(a.recovery.restarts, b.recovery.restarts);
    assert_eq!(a.recovery.lost_steps, b.recovery.lost_steps);
    assert_eq!(
        a.recovery.outcomes[0].resumed_from,
        b.recovery.outcomes[0].resumed_from
    );
    assert_eq!(a.report.steps, b.report.steps);
    assert_eq!(
        a.report.metrics.time_to_solution.to_bits(),
        b.report.metrics.time_to_solution.to_bits()
    );
    assert_eq!(a.report.metrics.totals, b.report.metrics.totals);
}

// ---- scale: the paper's rank counts, actually executed -----------------

/// The §4.1 figure's largest cell at the paper's real rank count: 1120
/// virtual ranks stepping a light slab mesh through the in situ driver in
/// event mode. The scaling point (560 vs 1120) comes from actual
/// execution, not extrapolation.
#[test]
fn event_mode_executes_the_papers_1120_rank_cell() {
    let cell = |ranks: usize| {
        let mut params = CaseParams::pb146_default();
        params.elems = [1, 1, ranks];
        params.order = 2;
        let mut case = pb146(&params, 4);
        // The smoke measures scheduling at width, not solver convergence:
        // cap both CG solves so per-step cost is a fixed, small number of
        // world-wide rendezvous.
        case.config.pressure_cg.max_iter = 4;
        case.config.velocity_cg.max_iter = 4;
        let mut cfg = insitu_cfg(
            InSituMode::Original,
            ExecMode::Synchronous,
            SchedMode::Event,
        );
        cfg.case = case;
        cfg.ranks = ranks;
        cfg.steps = 2;
        cfg.trigger_every = 2;
        run_insitu(&cfg)
    };
    let half = cell(560);
    let full = cell(1120);
    for (r, ranks) in [(&half, 560), (&full, 1120)] {
        assert_eq!(r.ranks, ranks);
        assert_eq!(r.steps, 2, "{ranks}-rank cell must complete every step");
        assert!(
            r.metrics.time_to_solution.is_finite() && r.metrics.time_to_solution > 0.0,
            "{ranks}-rank cell must report a positive finite virtual time"
        );
    }
    // Strong scaling on a fixed-size mesh: more ranks → more rendezvous
    // per step, so the 1120-rank cell cannot be faster than free.
    assert!(
        full.metrics.totals.messages_sent > half.metrics.totals.messages_sent,
        "doubling ranks must increase communication volume"
    );
}

/// Ten thousand virtual ranks on one machine: far beyond the thread
/// executor's cap, fine for the event scheduler with small coroutine
/// stacks. The workload is trivial (clock advance + neighbor exchange +
/// allreduce) — the point is world construction, scheduling, and memory,
/// not solver throughput.
#[test]
fn ten_thousand_virtual_ranks_complete_in_event_mode() {
    reset_peak();
    let before = global_peak();
    let n = 10_000usize;
    let results = EventExecutor::with_stack_bytes(256 * 1024).run_world(
        n,
        MachineModel::test_tiny(),
        Registry::new(),
        move |comm| {
            let r = comm.rank();
            comm.advance((r % 7) as f64 * 1e-6);
            comm.send((r + 1) % n, 1, r as u64, 8);
            let left = comm.recv::<u64>((r + n - 1) % n, 1);
            assert_eq!(left as usize, (r + n - 1) % n);
            comm.allreduce(1.0, commsim::ReduceOp::Sum)
        },
    );
    assert_eq!(results.len(), n);
    for r in &results {
        assert_eq!(
            r.value, n as f64,
            "rank {}: allreduce over all ranks",
            r.rank
        );
    }
    let grown = global_peak() - before;
    // Real heap growth stays far below what 10k thread-mode stacks would
    // cost (10k × 2 MiB = 20 GiB); the world itself is a few KB per rank.
    // Generous bound: concurrent tests in this binary also allocate.
    assert!(
        grown < 4 << 30,
        "10k-rank world must stay within a 4 GiB heap budget (grew {grown} B)"
    );
}

/// Thread mode refuses oversized worlds with an actionable error instead
/// of failing thread-by-thread at spawn time.
#[test]
fn thread_mode_rejects_worlds_beyond_its_cap() {
    let err = std::panic::catch_unwind(|| {
        ThreadExecutor::default().run_world(
            THREAD_MODE_DEFAULT_MAX_RANKS + 1,
            MachineModel::test_tiny(),
            Registry::new(),
            |comm| comm.rank(),
        )
    })
    .expect_err("the cap must reject the world");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("NEK_SCHED_MODE=event") && msg.contains("cap"),
        "the error must point at event mode: {msg}"
    );
}
