//! Integration: fault injection and the degradation ladder end to end —
//! endpoint crash → BP file fallback, CRC rejection → retransmit,
//! partial-step analysis, and determinism of the fault schedule.

use commsim::{run_ranks_with_state, EndpointCrash, FaultPlan, LinkFaultSpec, MachineModel};
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig};
use sem::cases::{rbc, CaseParams};
use transport::{crc32, BpFileReader, QueuePolicy, StagingLink, StagingNetwork, WriterConfig};

fn faulty_config(steps: usize, faults: FaultPlan) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps,
        trigger_every: 2,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Checkpointing,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (64, 48),
        output_dir: None,
        faults,
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nek-sensei-fault-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn endpoint_crash_degrades_to_checkpointing_with_zero_lost_triggers() {
    let dir = scratch_dir("crash");
    let mut cfg = faulty_config(
        10, // triggers at 2,4,6,8,10
        FaultPlan {
            crashes: vec![EndpointCrash {
                endpoint: 0,
                at_step: 3,
            }],
            ..FaultPlan::default()
        },
    );
    cfg.fallback_dir = Some(dir.clone());
    let r = run_intransit(&cfg);

    assert_eq!(r.endpoint_crashes, 1, "scheduled crash must fire");
    let d = r.degradation;
    assert_eq!(d.lost_steps, 0, "a dead endpoint must not lose triggers");
    assert!(d.degraded(), "all producers must switch to the file engine");
    assert_eq!(d.degraded_producers, 4);
    assert_eq!(
        d.staged_steps + d.parked_steps,
        5 * 4,
        "every trigger staged or parked"
    );
    // Every parked trigger reads back through the BP file engine.
    let mut parked_on_disk = 0;
    for producer in 0..4 {
        let path = dir.join(format!("producer_{producer:05}.bp4l"));
        let mut reader = BpFileReader::open(&path).expect("fallback file");
        while let Some(sd) = reader.next_step().expect("valid BP frame") {
            assert!(sd.step > 0);
            parked_on_disk += 1;
        }
    }
    assert_eq!(parked_on_disk, d.parked_steps);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_frames_are_crc_rejected_and_retransmitted_end_to_end() {
    let r = run_intransit(&faulty_config(
        8, // triggers at 2,4,6,8
        FaultPlan::with_link(
            5,
            LinkFaultSpec {
                corrupt_prob: 0.3,
                ..LinkFaultSpec::default()
            },
        ),
    ));
    assert!(
        r.endpoint_corrupt_rejected > 0,
        "30% corruption must reject some frames"
    );
    assert!(r.degradation.retries > 0, "rejected frames are retried");
    // Retransmits absorb every corruption: the endpoint still assembles
    // and analyses every triggered step in full.
    assert_eq!(r.endpoint_steps, 4);
    assert_eq!(r.endpoint_partial_steps, 0);
    assert_eq!(r.degradation.lost_steps, 0);
    assert!(!r.degradation.degraded());
    assert!(r.endpoint_bytes_written > 0, "checkpoints written");
}

#[test]
fn exhausted_retries_yield_partial_steps_that_still_render() {
    // A drop rate high enough that some producer exhausts its 4 attempts
    // on some step (seed-pinned), but not enough to trip any breaker.
    let r = run_intransit(&faulty_config(
        12, // triggers at 2,4,...,12
        FaultPlan::with_link(
            3,
            LinkFaultSpec {
                drop_prob: 0.5,
                ..LinkFaultSpec::default()
            },
        ),
    ));
    assert!(
        r.endpoint_partial_steps > 0,
        "seed 3 at 50% drop must produce a partial step"
    );
    assert!(
        r.degradation.lost_steps > 0,
        "the skipped trigger is lost writer-side"
    );
    // The endpoint keeps analysing: every trigger is processed, partially
    // or in full, and the stream runs to completion.
    assert_eq!(r.endpoint_steps, 6);
    assert!(!r.degradation.degraded(), "no breaker trip at this rate");
    assert!(r.endpoint_bytes_written > 0);
}

/// CRC-framed payload as the staging engine expects it.
fn framed_payload(tag: u8) -> Vec<u8> {
    let mut body = vec![tag; 64];
    let crc = crc32(&body).to_le_bytes();
    body.extend_from_slice(&crc);
    body
}

/// Engine-level run under `plan`: 2 producers feed 1 endpoint for
/// `steps` steps; returns the delivered `(step, missing)` log.
fn delivered_log(plan: FaultPlan, steps: u64) -> Vec<(u64, Vec<usize>)> {
    let (writers, readers) = StagingNetwork::build_faulty(
        2,
        1,
        64,
        StagingLink::test_tiny(),
        QueuePolicy::Block,
        plan,
        WriterConfig::default(),
    );
    let reader_thread = std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let mut log = Vec::new();
            while let Some(d) = reader.recv_step(comm).unwrap() {
                log.push((d.step, d.missing.clone()));
            }
            log
        })
    });
    run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, mut w| {
        for step in 1..=steps {
            if w.write(comm, step, 0.0, framed_payload(step as u8))
                .is_err()
            {
                // Fatal errors (breaker open) end this producer's stream;
                // transient step losses keep it going.
                if w.breaker_open() {
                    break;
                }
            }
        }
    });
    reader_thread.join().expect("reader world").remove(0)
}

mod marshaling {
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
    use proptest::collection::vec;
    use proptest::prelude::*;
    use transport::{frame_crc_ok, marshal_blocks, unmarshal_blocks};

    /// A producer's-eye mesh: `n` points strung into line cells, with an
    /// f64 scalar, an f32 scalar and an f64 vector field on the points.
    fn build_grid(pts: &[f64], f64s: &[f64], f32s: &[f32], vecs: &[f64]) -> UnstructuredGrid {
        let n = f64s.len();
        let mut g = UnstructuredGrid::new();
        for i in 0..n {
            g.add_point([pts[3 * i], pts[3 * i + 1], pts[3 * i + 2]]);
        }
        for i in 1..n {
            g.add_cell(CellType::Line, &[i as i64 - 1, i as i64]);
        }
        g.add_point_data(DataArray::scalars_f64("temperature", f64s.to_vec()))
            .expect("matching length");
        g.add_point_data(DataArray::scalars_f32("pressure", f32s.to_vec()))
            .expect("matching length");
        g.add_point_data(DataArray::vectors_f64("velocity", vecs.to_vec()))
            .expect("matching length");
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// marshal → unmarshal is the identity on arbitrary field data:
        /// header, topology and every array survive bit-exactly.
        #[test]
        fn marshal_roundtrips_arbitrary_fields(
            (pts, f64s, f32s, vecs) in (1usize..12).prop_flat_map(|n| (
                vec(-1.0e6..1.0e6f64, 3 * n),
                vec(-1.0e12..1.0e12f64, n),
                vec(-1.0e6..1.0e6f32, n),
                vec(-1.0..1.0f64, 3 * n),
            )),
            producer in 0u32..64,
            step in 1u64..10_000,
            time in 0.0..1.0e4f64,
        ) {
            let grid = build_grid(&pts, &f64s, &f32s, &vecs);
            let mb = MultiBlock::local(producer as usize, 64, grid.clone());
            let payload = marshal_blocks(producer, step, time, &mb);
            prop_assert!(frame_crc_ok(&payload));
            let sd = unmarshal_blocks(&payload).expect("roundtrip");
            prop_assert_eq!(sd.producer, producer);
            prop_assert_eq!(sd.step, step);
            prop_assert_eq!(sd.time.to_bits(), time.to_bits());
            prop_assert_eq!(sd.blocks.len(), 1);
            prop_assert_eq!(sd.blocks[0].0, producer);
            prop_assert_eq!(&sd.blocks[0].1, &grid);
        }

        /// CRC32 catches any single corrupted byte, wherever it lands —
        /// body or trailer — and `unmarshal_blocks` refuses the frame.
        #[test]
        fn single_byte_corruption_is_always_rejected(
            n in 1usize..8,
            pos_frac in 0.0..1.0f64,
            flip in 1u8..=255,
        ) {
            let pts: Vec<f64> = (0..3 * n).map(|i| i as f64).collect();
            let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let f32s: Vec<f32> = vec![1.0; n];
            let vecs: Vec<f64> = vec![0.25; 3 * n];
            let grid = build_grid(&pts, &vals, &f32s, &vecs);
            let mb = MultiBlock::local(0, 4, grid);
            let mut payload = marshal_blocks(0, 7, 0.5, &mb);
            let pos = ((payload.len() - 1) as f64 * pos_frac) as usize;
            payload[pos] ^= flip; // nonzero XOR: the byte really changes
            prop_assert!(!frame_crc_ok(&payload), "corruption at byte {} undetected", pos);
            prop_assert!(unmarshal_blocks(&payload).is_err());
        }
    }
}

mod determinism {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The fault schedule is a pure function of (plan, seed): two runs
        /// of the same plan deliver bit-identical step logs, regardless of
        /// thread scheduling.
        #[test]
        fn same_seed_same_delivered_log(
            seed in 0u64..1_000,
            drop_prob in 0.0..0.4f64,
            corrupt_prob in 0.0..0.3f64,
            delay_prob in 0.0..0.5f64,
        ) {
            let plan = FaultPlan::with_link(
                seed,
                LinkFaultSpec {
                    drop_prob,
                    corrupt_prob,
                    delay_prob,
                    delay_secs: 1e-3,
                },
            );
            let first = delivered_log(plan.clone(), 10);
            let second = delivered_log(plan, 10);
            prop_assert_eq!(first, second);
        }
    }
}

mod wire_framing {
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
    use proptest::collection::vec;
    use proptest::prelude::*;
    use std::io::Write as _;
    use transport::engine::{Packet, PacketKind};
    use transport::wire::{encode_packet, loopback_listener, read_frame, WireRecvError};
    use transport::{frame_crc_ok, marshal_blocks, unmarshal_blocks};

    /// A real marshaled BP payload for one producer's tiny line mesh.
    fn bp_payload(producer: u32, step: u64, n: usize) -> Vec<u8> {
        let mut g = UnstructuredGrid::new();
        for i in 0..n {
            g.add_point([i as f64, 0.5, -0.5]);
        }
        for i in 1..n {
            g.add_cell(CellType::Line, &[i as i64 - 1, i as i64]);
        }
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..n).map(|i| i as f64 + producer as f64).collect(),
        ))
        .expect("matching length");
        let mb = MultiBlock::local(producer as usize, 64, g);
        marshal_blocks(producer, step, step as f64 * 0.1, &mb)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// BP frames survive any TCP framing the kernel (or an adversary)
        /// chooses: the encoded packet stream is written over a real
        /// loopback socket in arbitrary chunk sizes — splitting frames
        /// mid-header and coalescing several frames into one write — and
        /// every frame decodes bit-exactly. With a truncated tail, every
        /// complete frame still decodes and the cut surfaces as a
        /// `ShortRead`, never as a clean end-of-stream.
        #[test]
        fn bp_frames_survive_adversarial_tcp_framing(
            frames in vec((0u32..8, 1u64..1000, 2usize..6), 1..4),
            chunk_sizes in vec(1usize..97, 1..8),
            truncate in 0u8..2,
        ) {
            let packets: Vec<Packet> = frames
                .iter()
                .map(|&(producer, step, n)| Packet {
                    kind: PacketKind::Data,
                    producer: producer as usize,
                    step,
                    time: step as f64 * 0.1,
                    t_avail: step as f64 * 0.2,
                    ctx: step.wrapping_mul(producer as u64 + 1),
                    t_sent: step as f64 * 0.05,
                    payload: bp_payload(producer, step, n),
                })
                .collect();
            let mut stream_bytes = Vec::new();
            for p in &packets {
                stream_bytes.extend_from_slice(&encode_packet(p));
            }
            let truncate = truncate == 1;
            let mut expect_complete = packets.len();
            if truncate {
                // Cut inside the last frame's body (past its length
                // prefix, before its end).
                let last_len = encode_packet(packets.last().unwrap()).len();
                let cut = stream_bytes.len() - last_len + 5;
                stream_bytes.truncate(cut);
                expect_complete -= 1;
            }

            let (listener, port) = loopback_listener().expect("loopback");
            let writer = std::thread::spawn(move || {
                let mut s =
                    std::net::TcpStream::connect(format!("127.0.0.1:{port}")).unwrap();
                s.set_nodelay(true).ok();
                // Adversarial framing: replay the byte stream in the
                // generated chunk sizes, cycling through them.
                let mut off = 0;
                let mut i = 0;
                while off < stream_bytes.len() {
                    let take = chunk_sizes[i % chunk_sizes.len()].min(stream_bytes.len() - off);
                    s.write_all(&stream_bytes[off..off + take]).unwrap();
                    s.flush().ok();
                    off += take;
                    i += 1;
                }
            });
            let (mut conn, _) = listener.accept().expect("accept");
            let mut got = Vec::new();
            let tail = loop {
                match read_frame(&mut conn) {
                    Ok(Some(p)) => got.push(p),
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            writer.join().unwrap();

            prop_assert_eq!(got.len(), expect_complete);
            for (sent, rx) in packets.iter().zip(&got) {
                prop_assert_eq!(rx.producer, sent.producer);
                prop_assert_eq!(rx.step, sent.step);
                prop_assert_eq!(rx.time.to_bits(), sent.time.to_bits());
                prop_assert_eq!(rx.t_avail.to_bits(), sent.t_avail.to_bits());
                prop_assert_eq!(&rx.payload, &sent.payload);
                // The payload is still a CRC-clean BP frame end to end.
                prop_assert!(frame_crc_ok(&rx.payload));
                let sd = unmarshal_blocks(&rx.payload).expect("roundtrip");
                prop_assert_eq!(sd.step, sent.step);
            }
            if truncate {
                prop_assert!(
                    matches!(tail, Err(WireRecvError::ShortRead { .. })),
                    "truncated tail must surface as a short read, got {:?}",
                    tail
                );
            } else {
                prop_assert!(tail.is_ok(), "clean stream ended with {:?}", tail);
            }
        }
    }
}
