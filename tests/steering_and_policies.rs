//! Integration: steering (watchdog stop) through the full solver+bridge
//! loop, and lossy staging policies end to end.

use commsim::{run_ranks, run_ranks_with_state, MachineModel};
use insitu::Bridge;
use nek_sensei::SnapshotPlane;
use sem::cases::{pb146, CaseParams};
use transport::{QueuePolicy, StagingLink, StagingNetwork, TransportAnalysis};

#[test]
fn watchdog_stops_a_simulation_mid_run() {
    // An absurdly tight velocity bound trips on the very first trigger; the
    // bridge then reports "stop" and the loop must exit early on all ranks.
    let res = run_ranks(2, MachineModel::polaris(), |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        let mut solver = pb146(&params, 4).build(comm);
        let xml = r#"<sensei>
            <analysis type="watchdog" array="velocity" frequency="2" max="1e-6"/>
        </sensei>"#;
        let mut bridge = Bridge::initialize(comm, xml, &[]).unwrap();
        let plane = SnapshotPlane::new(comm, &solver);
        let mut steps_run = 0;
        for step in 1..=10u64 {
            solver.step(comm);
            steps_run = step;
            if !bridge.triggers_at(step) {
                continue;
            }
            let mut da = plane.publish(comm, &mut solver, bridge.arrays_at(step));
            if !bridge.update(comm, step, &mut da).unwrap() {
                break;
            }
        }
        steps_run
    });
    // First watchdog trigger is step 2 (frequency 2), so every rank stops
    // there — consistently.
    assert_eq!(res, vec![2, 2]);
}

#[test]
fn discard_policy_loses_steps_but_keeps_the_stream_consistent() {
    // One sim rank floods a 1-slot queue faster than the endpoint drains;
    // DiscardNewest must drop steps without corrupting the survivors.
    let (writers, readers) = StagingNetwork::build(
        1,
        1,
        1,
        StagingLink::test_tiny(),
        QueuePolicy::DiscardNewest,
    );

    let endpoint = std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let mut steps = Vec::new();
            while let Some(delivery) = reader.recv_step(comm).unwrap() {
                // Discarded steps surface as skip-marker partials; only
                // complete deliveries carry payloads.
                if !delivery.is_complete() {
                    continue;
                }
                // Every surviving payload still unmarshals cleanly.
                let data = transport::unmarshal_blocks(&delivery.packets[0].payload).unwrap();
                assert_eq!(data.step, delivery.step);
                steps.push(delivery.step);
                // Simulate a slow consumer so the queue stays congested.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            steps
        })
    });

    let sim_stats = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, writer| {
        use insitu::AnalysisAdaptor as _;
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 2];
        params.order = 1;
        let mut solver = pb146(&params, 2).build(comm);
        let mut analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
        let plane = SnapshotPlane::new(comm, &solver);
        for step in 1..=30u64 {
            // Reuse the same solver state; only the step stamp changes.
            let mut da = plane.publish(comm, &mut solver, ["pressure"]);
            da.set_time_stamp(step as f64, step);
            analysis.execute(comm, &mut da).unwrap();
        }
        analysis.stats()
    });

    let delivered = endpoint.join().unwrap().remove(0);
    let (written, dropped, _) = sim_stats[0];
    assert_eq!(written + dropped, 30, "every step accounted for");
    assert!(dropped > 0, "congestion must force drops");
    assert_eq!(written as usize, delivered.len());
    // Delivered steps arrive in increasing order.
    assert!(delivered.windows(2).all(|w| w[0] < w[1]), "{delivered:?}");
}
