//! Steady-state Navier–Stokes stepping must not touch the heap.
//!
//! The workspace arena (`sem::workspace`) recycles every temporary field
//! the CG solver and the splitting scheme need; after a few warm-up steps
//! the arena and the history rings are fully populated and each further
//! step runs entirely out of reused buffers. This binary installs the
//! tracking allocator for real and asserts the allocation *count* stays
//! flat across steady-state steps — any regression that sneaks a `vec!`
//! or `clone()` back into the hot path fails loudly.
//!
//! This test lives in its own binary (one test per process) because the
//! allocator counters are process-wide: concurrent tests in a shared
//! binary would inflate the count.

use commsim::{run_ranks, MachineModel};
use memtrack::alloc::global_allocation_count;
use memtrack::TrackingAllocator;
use sem::cases::{pb146, rbc, CaseParams};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn steady_state_alloc_delta(build_rbc: bool, pool_threads: usize) -> u64 {
    rayon::pool::with_override(pool_threads, || {
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut solver = if build_rbc {
                let mut params = CaseParams::rbc_default();
                params.elems = [2, 2, 2];
                params.order = 3;
                rbc(&params, 1e4, 0.7).build(comm)
            } else {
                let mut params = CaseParams::pb146_default();
                params.elems = [2, 2, 4];
                params.order = 3;
                pb146(&params, 8).build(comm)
            };
            // Warm-up: populate the BDF/EXT history rings (depth 3), the
            // workspace arena, and the thread pool itself.
            for _ in 0..5 {
                solver.step(comm);
            }
            let before = global_allocation_count();
            for _ in 0..3 {
                solver.step(comm);
            }
            global_allocation_count() - before
        })[0]
    })
}

#[test]
fn ns_step_steady_state_is_allocation_free() {
    // pb146 (velocity + pressure only), sequential pool.
    let delta = steady_state_alloc_delta(false, 1);
    assert_eq!(delta, 0, "pb146 steady-state step allocated {delta} times");

    // RBC adds the Boussinesq temperature solve to the hot path.
    let delta = steady_state_alloc_delta(true, 1);
    assert_eq!(delta, 0, "rbc steady-state step allocated {delta} times");

    // The multi-threaded pool must also run allocation-free: batches are
    // stack-allocated and the job queue is pre-reserved.
    let delta = steady_state_alloc_delta(false, 4);
    assert_eq!(
        delta, 0,
        "pb146 steady-state step with 4 pool threads allocated {delta} times"
    );
}
