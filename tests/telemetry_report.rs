//! Integration: the unified telemetry bus end to end — a pipelined in situ
//! run with fault injection and a degraded in-transit run each emit one
//! `RunReport` that answers the observability questions (per-step series,
//! p95 step time, backpressure, virtual fault timestamps, memory
//! watermarks) without scraping stdout, and attaching the bus never
//! perturbs the solver.

use commsim::{ConsumerStall, FaultPlan, LinkFaultSpec, MachineModel};
use nek_sensei::{
    run_insitu, run_intransit, EndpointMode, ExecMode, InSituConfig, InSituMode, InTransitConfig,
};
use sem::cases::{pb146, rbc, CaseParams};
use telemetry::{EventKind, RunReport, REPORT_SCHEMA};
use transport::{QueuePolicy, StagingLink, WriterConfig};

/// Pipelined checkpointing run with a 50-virtual-second consumer stall at
/// step 2 — the ISSUE's flagship scenario.
fn stalled_insitu_config(telemetry: bool, output_dir: Option<std::path::PathBuf>) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 4),
        ranks: 2,
        steps: 8,
        trigger_every: 2,
        machine: MachineModel::polaris(),
        image_size: (64, 48),
        mode: InSituMode::Checkpointing,
        exec: ExecMode::Pipelined,
        sched: Default::default(),
        faults: FaultPlan {
            stalls: vec![ConsumerStall {
                endpoint: 0,
                at_step: 2,
                seconds: 50.0,
            }],
            ..FaultPlan::none()
        },
        output_dir,
        trace: true,
        telemetry,
        recovery: Default::default(),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nek-sensei-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn pipelined_fault_run_emits_complete_run_report() {
    let r = run_insitu(&stalled_insitu_config(true, None));
    let report = r.run_report.expect("telemetry: true collects a report");

    // Manifest describes the run.
    assert_eq!(report.manifest.workflow, "insitu");
    assert_eq!(report.manifest.mode, "checkpointing");
    assert_eq!(report.manifest.exec, "pipelined");
    assert_eq!(report.manifest.ranks, 2);
    assert_eq!(report.manifest.steps, 8);
    assert!(report.manifest.fault_plan.contains("stalls=1"));

    // Series/step-count agreement: one sample per solver step, none
    // evicted at this size, steps contiguous from 1.
    assert_eq!(report.series.len(), 8);
    assert_eq!(report.evicted_samples, 0);
    let steps: Vec<u64> = report.series.iter().map(|s| s.step).collect();
    assert_eq!(steps, (1..=8).collect::<Vec<_>>());
    // The series timeline is contiguous on rank 0's clock.
    for w in report.series.windows(2) {
        assert_eq!(
            w[0].t_end.to_bits(),
            w[1].t_start.to_bits(),
            "sample boundaries must chain"
        );
    }

    // The p95 readout works and the stall's backpressure reached the
    // producer (50 s parked in a <1 s/step run must dominate).
    assert!(report.step_time_p95() > 0.0);
    assert!(
        report.total_backpressure_wait() > 10.0,
        "50 s stall must back up into the producer: got {}",
        report.total_backpressure_wait()
    );

    // Traced phase self-times landed in the samples.
    assert!(
        report
            .series
            .iter()
            .any(|s| s.phase_self.iter().any(|(n, t)| n == "sem/cg" && *t > 0.0)),
        "per-step phase attribution missing"
    );

    // The injected stall is a structured event with its virtual onset
    // time, and checkpoint writes are logged too.
    let stalls: Vec<_> = report.events_of(EventKind::FaultInjected).collect();
    assert_eq!(stalls.len(), 1, "one stall injected");
    assert_eq!(stalls[0].step, Some(2));
    assert!(stalls[0].at > 0.0, "virtual timestamp recorded");
    assert_eq!(stalls[0].pid, 1, "stall happens on the consumer world");
    assert_eq!(
        report.events_of(EventKind::CheckpointWrite).count(),
        8,
        "4 triggers x 2 ranks"
    );

    // Events come out sorted by virtual time.
    for w in report.events.windows(2) {
        assert!(w[0].at <= w[1].at, "events must be time-ordered");
    }

    // Memory watermarks: every accountant present, roll-up consistent.
    assert!(!report.watermarks.is_empty());
    assert!(report
        .watermarks
        .iter()
        .any(|(name, _, peak)| name.ends_with("/snapshot-pool") && *peak > 0));
    assert!(report.memory.host_aggregate_peak > 0);

    // Instrument registry captured the solver histogram (sim world) and
    // the checkpoint counter (consumer world, `endpoint<r>/` scope).
    assert!(report.metric("rank0/sem/step_time").is_some());
    assert!(report
        .metric("endpoint0/checkpoint/bytes_written")
        .is_some());
}

#[test]
fn telemetry_is_invisible_to_the_solver() {
    // Bitwise-identical artifacts: the same faulted pipelined run, with
    // and without the bus attached, must write identical checkpoints and
    // finish at the identical virtual time.
    let dir_off = scratch_dir("off");
    let dir_on = scratch_dir("on");
    let off = run_insitu(&stalled_insitu_config(false, Some(dir_off.clone())));
    let on = run_insitu(&stalled_insitu_config(true, Some(dir_on.clone())));

    assert!(off.run_report.is_none());
    assert!(on.run_report.is_some());
    assert_eq!(
        off.metrics.time_to_solution.to_bits(),
        on.metrics.time_to_solution.to_bits(),
        "telemetry must never advance the virtual clock"
    );
    assert_eq!(off.bytes_written, on.bytes_written);

    let mut names_off: Vec<String> = std::fs::read_dir(&dir_off)
        .expect("dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names_off.sort();
    assert!(!names_off.is_empty(), "checkpoint files written");
    for name in &names_off {
        let a = std::fs::read(dir_off.join(name)).expect("read off");
        let b = std::fs::read(dir_on.join(name)).expect("read on");
        assert_eq!(a, b, "{name} must be bitwise identical");
    }
    let _ = std::fs::remove_dir_all(&dir_off);
    let _ = std::fs::remove_dir_all(&dir_on);
}

#[test]
fn intransit_degradation_is_visible_in_the_event_log() {
    // Total link failure: every producer's circuit breaker opens and it
    // switches to the BP file engine — all visible as timestamped events.
    let dir = scratch_dir("intransit");
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    let cfg = InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps: 10,
        trigger_every: 2,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Checkpointing,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (64, 48),
        output_dir: None,
        faults: FaultPlan::with_link(
            42,
            LinkFaultSpec {
                drop_prob: 1.0,
                ..LinkFaultSpec::default()
            },
        ),
        writer_config: WriterConfig::default(),
        fallback_dir: Some(dir.clone()),
        trace: false,
        telemetry: true,
        recovery: Default::default(),
    };
    let r = run_intransit(&cfg);
    let report = r.run_report.expect("telemetry: true collects a report");

    assert_eq!(report.manifest.workflow, "intransit");
    assert_eq!(report.manifest.endpoint_ranks, 1);

    // One breaker-open and one engine-switch per producer, each with a
    // positive virtual timestamp and ordered within each producer.
    let opens: Vec<_> = report.events_of(EventKind::CircuitBreakerOpen).collect();
    let switches: Vec<_> = report.events_of(EventKind::EngineSwitch).collect();
    assert_eq!(opens.len(), 4, "one per producer");
    assert_eq!(switches.len(), 4, "one per producer");
    for e in opens.iter().chain(&switches) {
        assert!(e.at > 0.0, "virtual timestamp recorded: {e:?}");
    }
    for producer in 0..4usize {
        let open = opens.iter().find(|e| e.rank == producer).expect("open");
        let sw = switches
            .iter()
            .find(|e| e.rank == producer)
            .expect("switch");
        assert!(open.at <= sw.at, "breaker opens before the engine switch");
        assert_eq!(sw.step, Some(6), "switch at the breaker-tripping trigger");
    }

    // Retries accumulated in the sim-world counters and the series.
    let retries: u64 = report
        .metrics
        .iter()
        .filter(|(n, _)| n.ends_with("/transport/retries"))
        .map(|(_, v)| match v {
            telemetry::MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum();
    assert!(retries > 0, "dropped frames must show up as retries");
    assert!(report.series.last().expect("series").retries > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_report_round_trips_through_json() {
    // A real report (not a fixture) survives serialize → parse losslessly.
    let r = run_insitu(&stalled_insitu_config(true, None));
    let report = r.run_report.expect("report");
    let json = report.to_json();
    assert!(json.contains(REPORT_SCHEMA));
    let back = RunReport::from_json(&json).expect("parse own output");
    assert_eq!(report, back, "JSON round trip must be lossless");
}

/// The event log is sorted by virtual timestamp with a stable
/// (pid, rank, step) tie-break — under both rank schedulers, and the
/// two schedulers produce the identical log.
#[test]
fn event_log_is_sorted_with_stable_tie_break_in_both_sched_modes() {
    let run = |sched: commsim::SchedMode| {
        let mut cfg = stalled_insitu_config(true, None);
        cfg.sched = sched;
        let r = run_insitu(&cfg);
        r.run_report.expect("telemetry: true collects a report").events
    };
    let thread = run(commsim::SchedMode::Thread);
    let event = run(commsim::SchedMode::Event);
    for (label, events) in [("thread", &thread), ("event", &event)] {
        assert!(!events.is_empty(), "{label}: no events logged");
        for w in events.windows(2) {
            let a = (w[0].at, w[0].pid, w[0].rank, w[0].step);
            let b = (w[1].at, w[1].pid, w[1].rank, w[1].step);
            assert!(
                a <= b,
                "{label}: events out of order: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
    assert_eq!(thread, event, "event logs differ across schedulers");
}
