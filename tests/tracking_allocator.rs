//! Integration: the process-wide tracking allocator, installed for real in
//! this test binary (a library crate must not impose a global allocator,
//! so this is the one place it can be exercised end to end).

use memtrack::alloc::{global_allocation_count, global_current, global_peak, reset_peak};
use memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

#[test]
fn real_allocations_move_the_counters() {
    let count0 = global_allocation_count();
    let cur0 = global_current();
    let buf: Vec<u8> = Vec::with_capacity(1 << 20);
    assert!(
        global_current() >= cur0 + (1 << 20),
        "1 MiB allocation must be visible"
    );
    assert!(global_allocation_count() > count0);
    drop(buf);
    assert!(global_current() < cur0 + (1 << 20), "drop must credit back");
}

#[test]
fn peak_captures_a_transient_high_water_mark() {
    reset_peak();
    let base = global_peak();
    {
        let _spike: Vec<u8> = vec![0; 4 << 20];
        assert!(global_peak() >= base + (4 << 20));
    }
    // The spike is gone but the peak remains.
    assert!(global_peak() >= base + (4 << 20));
    assert!(global_current() < global_peak());
}

#[test]
fn solver_heap_usage_is_observable_process_wide() {
    use commsim::{run_ranks, MachineModel};
    use sem::cases::{pb146, CaseParams};

    reset_peak();
    let before = global_peak();
    run_ranks(2, MachineModel::test_tiny(), |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [3, 3, 4];
        params.order = 3;
        let mut solver = pb146(&params, 8).build(comm);
        solver.step(comm);
    });
    let grown = global_peak() - before;
    // 2 ranks × ~70 elements × 64 nodes × many f64 fields: hundreds of KB
    // (tests run concurrently, so `before` may already sit above the quiet
    // baseline — keep the bound conservative).
    assert!(
        grown > 400 << 10,
        "solver run must raise the real heap peak (grew {grown} B)"
    );
}
