//! Integration: the span tracer's timing invariants over real workflow
//! runs — per-phase attribution against the virtual clock, transport
//! spans in in-transit runs, degraded-path spans, determinism, and the
//! Chrome trace-event emitter's structure.

use commsim::{chrome_trace_json, EndpointCrash, FaultPlan, MachineModel, PhaseBreakdown};
use nek_sensei::{
    run_insitu, run_intransit, EndpointMode, InSituConfig, InSituMode, InTransitConfig,
};
use sem::cases::{rbc, CaseParams};
use transport::{QueuePolicy, StagingLink, WriterConfig};

/// Tiny traced in-transit config (the fig5 pattern at miniature scale).
fn traced_intransit(sim_ranks: usize, mode: EndpointMode) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, sim_ranks.max(2)];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks,
        ratio: 4,
        steps: 6,
        trigger_every: 3,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (80, 60),
        output_dir: None,
        faults: FaultPlan::none(),
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: true,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// Rank worlds a traced in situ run produces: 1 synchronously, 2 when
/// `NEK_EXEC_MODE=pipelined` adds the consumer world (pid 1).
fn insitu_worlds() -> usize {
    match nek_sensei::ExecMode::default() {
        nek_sensei::ExecMode::Pipelined => 2,
        nek_sensei::ExecMode::Synchronous => 1,
    }
}

fn traced_insitu(ranks: usize) -> InSituConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, ranks.max(2)];
    params.order = 2;
    InSituConfig {
        case: rbc(&params, 1e4, 0.7),
        ranks,
        steps: 6,
        trigger_every: 3,
        machine: MachineModel::test_tiny(),
        image_size: (80, 60),
        mode: InSituMode::Catalyst,
        exec: Default::default(),
        sched: Default::default(),
        faults: commsim::FaultPlan::none(),
        output_dir: None,
        trace: true,
        telemetry: false,
        recovery: Default::default(),
    }
}

/// Every rank's attributed self-time must not exceed its virtual wall
/// clock: spans measure the clock, they never invent time.
fn assert_phases_bounded_by_wall(phases: &PhaseBreakdown) {
    for rank in &phases.ranks {
        let attributed: f64 = rank.phases.values().map(|s| s.self_total).sum();
        assert!(
            attributed <= rank.wall * (1.0 + 1e-9) + 1e-12,
            "pid {} rank {}: attributed {attributed} > wall {}",
            rank.pid,
            rank.rank,
            rank.wall
        );
    }
}

#[test]
fn intransit_catalyst_attributes_virtual_time_to_phases() {
    let r = run_intransit(&traced_intransit(8, EndpointMode::Catalyst));
    assert_eq!(r.traces.len(), 10, "8 sim ranks + 2 endpoint ranks traced");
    let phases = r.phases.expect("trace: true produces a breakdown");
    assert_phases_bounded_by_wall(&phases);
    // The acceptance bar: at least 95% of every rank's virtual wall time
    // lands in a named span (ISSUE: per-phase overhead attribution).
    let frac = phases.attributed_fraction();
    assert!(
        frac >= 0.95,
        "worst-rank attributed fraction {frac:.4} < 0.95\n{}",
        phases.to_table()
    );
    // In-transit runs push data over the staging link: the send phase
    // must show up with real counts and real time.
    assert!(
        phases.count("transport/send") > 0,
        "no transport/send spans"
    );
    assert!(phases.total("transport/send") > 0.0);
    // Solver and render phases both appear (sim pid and endpoint pid).
    assert!(phases.count("sem/pressure") > 0);
    assert!(phases.count("render/raster") > 0);
    assert!(phases.count("transport/recv") > 0);
}

#[test]
fn insitu_catalyst_attribution_holds_without_transport() {
    let r = run_insitu(&traced_insitu(4));
    let phases = r.phases.expect("trace: true produces a breakdown");
    assert_eq!(phases.ranks.len(), 4 * insitu_worlds());
    assert_phases_bounded_by_wall(&phases);
    assert!(
        phases.attributed_fraction() >= 0.95,
        "{}",
        phases.to_table()
    );
    // In situ everything happens on the simulation ranks: in-situ copy
    // and render spans exist, transport spans do not.
    assert!(phases.count("insitu/execute") > 0);
    assert!(phases.count("render/raster") > 0);
    assert_eq!(phases.count("transport/send"), 0);
}

/// A fig5 cell whose trigger never fires leaves the endpoint at virtual
/// time zero (nothing ever crosses the link). Zero seconds means zero
/// unattributed seconds — the endpoint must not drag the run's
/// attribution to 0.
#[test]
fn idle_endpoint_is_vacuously_attributed() {
    let mut cfg = traced_intransit(4, EndpointMode::Checkpointing);
    cfg.trigger_every = 100; // > steps: no trigger ever fires
    let r = run_intransit(&cfg);
    assert_eq!(r.endpoint_steps, 0);
    let phases = r.phases.expect("traced");
    assert_phases_bounded_by_wall(&phases);
    assert!(
        phases.attributed_fraction() >= 0.95,
        "{}",
        phases.to_table()
    );
}

#[test]
fn untraced_runs_carry_no_breakdown() {
    let mut cfg = traced_intransit(4, EndpointMode::NoTransport);
    cfg.trace = false;
    let r = run_intransit(&cfg);
    assert!(r.traces.is_empty());
    assert!(r.phases.is_none());
}

/// Satellite-4 regression: a fault-injected run (endpoint crash mid-flight,
/// producers degrade to the BP file fallback) with tracing enabled must
/// neither panic nor deadlock — span guards are dropped out of creation
/// order on the crash/degrade paths — and the degraded path must show up
/// as `transport/park` time.
#[test]
fn degraded_run_traces_park_spans_without_panicking() {
    let dir =
        std::env::temp_dir().join(format!("nek-sensei-trace-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut cfg = traced_intransit(4, EndpointMode::Checkpointing);
    cfg.steps = 10;
    cfg.trigger_every = 2;
    cfg.faults = FaultPlan {
        crashes: vec![EndpointCrash {
            endpoint: 0,
            at_step: 3,
        }],
        ..FaultPlan::default()
    };
    cfg.fallback_dir = Some(dir.clone());
    let r = run_intransit(&cfg);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(r.endpoint_crashes, 1, "scheduled crash must fire");
    assert!(r.degradation.degraded(), "producers must switch engines");
    let phases = r.phases.expect("tracing survives the fault path");
    assert_phases_bounded_by_wall(&phases);
    assert!(
        phases.count("transport/park") > 0,
        "parked triggers must be attributed to transport/park\n{}",
        phases.to_table()
    );
    assert!(phases.total("transport/park") > 0.0);
}

#[test]
fn same_seed_runs_produce_identical_breakdowns() {
    let a = run_intransit(&traced_intransit(4, EndpointMode::Catalyst));
    let b = run_intransit(&traced_intransit(4, EndpointMode::Catalyst));
    // The virtual clock makes timing deterministic: not just "close", the
    // two breakdowns are bit-identical (PhaseBreakdown: PartialEq on f64).
    assert_eq!(a.phases.expect("traced"), b.phases.expect("traced"));
}

/// Minimal structural validation of a JSON value: balanced brackets and
/// quotes outside strings. Not a full parser — enough to catch emitter
/// bugs (unescaped quotes, trailing garbage, unbalanced arrays).
fn assert_structurally_valid_json(s: &str) {
    let mut depth_sq = 0i64;
    let mut depth_br = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => depth_sq += 1,
            ']' => depth_sq -= 1,
            '{' => depth_br += 1,
            '}' => depth_br -= 1,
            _ => {}
        }
        assert!(depth_sq >= 0 && depth_br >= 0, "close before open");
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth_sq, 0, "unbalanced [");
    assert_eq!(depth_br, 0, "unbalanced {{");
}

#[test]
fn chrome_trace_for_four_ranks_is_well_formed() {
    let r = run_insitu(&traced_insitu(4));
    assert_eq!(r.traces.len(), 4 * insitu_worlds());
    let json = chrome_trace_json(&r.traces);
    let t = json.trim();
    assert!(t.starts_with('['), "trace-event format is a JSON array");
    assert!(t.ends_with(']'));
    assert_structurally_valid_json(t);
    // One thread-name metadata record per rank, on the simulation pid.
    for rank in 0..4 {
        let needle = format!(r#""name":"thread_name","ph":"M","pid":0,"tid":{rank}"#);
        assert!(json.contains(&needle), "missing metadata for rank {rank}");
    }
    assert!(json.contains(r#""name":"process_name""#));
    // Complete events carry the fields Perfetto requires.
    let x_events = json.matches(r#""ph":"X""#).count();
    assert!(x_events > 0, "no complete events emitted");
    for field in [r#""ts":"#, r#""dur":"#, r#""cat":"#] {
        assert!(
            json.matches(field).count() >= x_events,
            "every X event needs {field}"
        );
    }
}

/// Sentinel span id a context word carries when the sender had no span
/// open (mirrors the tracer's internal `CTX_SPAN_MASK`).
const NO_SPAN: u64 = (1 << 40) - 1;

/// Cross-rank causal edges: every recorded edge must point back at a
/// real sender, the sender's span (when one was open) must bracket the
/// send time, and the happens-before direction must hold — under both
/// rank schedulers, with identical edge sets (edges derive purely from
/// virtual clocks, which the schedulers agree on).
#[test]
fn cross_rank_edges_link_send_to_recv_in_both_sched_modes() {
    use commsim::{unpack_ctx, EdgeKind, SchedMode};

    let run = |sched: SchedMode| {
        let mut cfg = traced_intransit(4, EndpointMode::Catalyst);
        cfg.sched = sched;
        run_intransit(&cfg).traces
    };

    let validate = |traces: &[commsim::RankTrace], label: &str| {
        let by_id: std::collections::BTreeMap<(u32, usize), &commsim::RankTrace> =
            traces.iter().map(|t| ((t.pid, t.rank), t)).collect();
        let mut total_edges = 0usize;
        let mut cross_rank = 0usize;
        let mut wire_cross_world = 0usize;
        for t in traces {
            for e in &t.edges {
                total_edges += 1;
                let (spid, srank, span) =
                    unpack_ctx(e.src).expect("recorded edges always carry a sender ctx");
                let sender = by_id
                    .get(&(spid, srank))
                    .unwrap_or_else(|| panic!("{label}: edge from untraced ({spid},{srank})"));
                if span != NO_SPAN {
                    let s = sender
                        .spans
                        .iter()
                        .find(|s| s.id == span)
                        .unwrap_or_else(|| {
                            panic!("{label}: sender span {span} missing on ({spid},{srank})")
                        });
                    assert!(
                        s.start <= e.t_send && e.t_send <= s.end,
                        "{label}: send at {} outside sender span [{}, {}]",
                        e.t_send,
                        s.start,
                        s.end
                    );
                }
                // Happens-before: the payload cannot be ready before it
                // was sent, and a binding edge really advanced the
                // receiver.
                assert!(e.t_ready >= e.t_send, "{label}: t_ready < t_send");
                assert_eq!(e.binding, e.t_ready > e.t_recv, "{label}: binding flag");
                if (spid, srank) != (t.pid, t.rank) {
                    cross_rank += 1;
                }
                if e.kind == EdgeKind::Wire && spid != t.pid {
                    wire_cross_world += 1;
                }
            }
        }
        assert!(total_edges > 0, "{label}: no causal edges recorded");
        assert!(
            cross_rank > 0,
            "{label}: no cross-rank edge (send on A happens-before recv on B)"
        );
        assert!(
            wire_cross_world > 0,
            "{label}: no wire edge from the sim world into the endpoint world"
        );
    };

    let thread = run(SchedMode::Thread);
    let event = run(SchedMode::Event);
    validate(&thread, "thread");
    validate(&event, "event");

    // Scheduler parity: the edge sets are identical, not just similar.
    let key = |ts: &[commsim::RankTrace]| {
        let mut v: Vec<_> = ts
            .iter()
            .map(|t| ((t.pid, t.rank), t.edges.clone()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    assert_eq!(key(&thread), key(&event), "edge sets differ across schedulers");
}

/// Critical-path analysis is deterministic: the same seed produces
/// byte-identical critical-path JSON, in either scheduler mode — and
/// the two modes agree with each other.
#[test]
fn critical_path_json_is_byte_identical_across_runs_and_schedulers() {
    use commsim::SchedMode;

    let run = |sched: SchedMode| {
        let mut cfg = traced_intransit(4, EndpointMode::Catalyst);
        cfg.sched = sched;
        cfg.telemetry = true;
        let r = run_intransit(&cfg);
        let report = r.run_report.expect("telemetry: true collects a report");
        let critical = report.critical.expect("traced run embeds a critical block");
        let mut json = String::new();
        telemetry::push_critical(&mut json, &critical);
        (critical, json)
    };

    let (crit_a, json_a) = run(SchedMode::Thread);
    let (_, json_b) = run(SchedMode::Thread);
    assert!(crit_a.total > 0.0, "critical path has no length");
    assert!(
        !crit_a.contrib.is_empty(),
        "critical path names no (rank, phase) contributors"
    );
    assert_eq!(json_a, json_b, "same seed, same mode: JSON must be identical");

    let (_, json_event) = run(SchedMode::Event);
    assert_eq!(
        json_a, json_event,
        "critical-path JSON differs across schedulers"
    );
}
