//! Integration: the paper's headline SENSEI property — analyses are chosen
//! at *runtime* from XML and can be swapped without touching (let alone
//! recompiling) the simulation loop.

use commsim::{run_ranks, MachineModel};
use insitu::Bridge;
use nek_sensei::SnapshotPlane;
use render::CatalystAnalysis;
use sem::cases::{pb146, CaseParams};

/// One fixed simulation loop; only the XML changes between runs.
fn simulate_with_config(config_xml: &'static str) -> Vec<(u64, u64)> {
    run_ranks(2, MachineModel::polaris(), move |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        let mut solver = pb146(&params, 4).build(comm);
        let mut bridge = Bridge::initialize(comm, config_xml, &[CatalystAnalysis::factory()])
            .expect("valid config");
        let plane = SnapshotPlane::new(comm, &solver);
        for step in 1..=6u64 {
            solver.step(comm);
            if !bridge.triggers_at(step) {
                continue;
            }
            let mut da = plane.publish(comm, &mut solver, bridge.arrays_at(step));
            bridge.update(comm, step, &mut da).expect("update");
        }
        bridge.finalize(comm).expect("finalize");
        (comm.stats().bytes_d2h, comm.stats().bytes_written_fs)
    })
}

#[test]
fn empty_config_is_free() {
    let res = simulate_with_config("<sensei></sensei>");
    for (d2h, fs) in res {
        assert_eq!(d2h, 0, "no analysis, no staging");
        assert_eq!(fs, 0);
    }
}

#[test]
fn stats_config_stages_but_does_not_write() {
    let res = simulate_with_config(
        r#"<sensei><analysis type="stats" array="pressure" frequency="2"/></sensei>"#,
    );
    for (d2h, fs) in res {
        assert!(d2h > 0, "stats needs the field on the host");
        assert_eq!(fs, 0, "stats writes nothing");
    }
}

#[test]
fn catalyst_config_stages_and_writes_images() {
    let res = simulate_with_config(
        r#"<sensei>
             <analysis type="catalyst" frequency="3" width="64" height="48"
                       slice_array="pressure" contour_array="velocity"/>
           </sensei>"#,
    );
    assert!(res[0].0 > 0);
    assert!(res[0].1 > 0, "rank 0 writes the PNGs");
    assert_eq!(res[1].1, 0, "other ranks write nothing");
}

#[test]
fn multiple_analyses_compose() {
    let res = simulate_with_config(
        r#"<sensei>
             <analysis type="stats"     array="velocity" frequency="1"/>
             <analysis type="histogram" array="pressure" frequency="2" bins="8"/>
             <analysis type="catalyst"  frequency="6" width="32" height="24"/>
           </sensei>"#,
    );
    // All three ran; catalyst wrote once.
    assert!(res[0].0 > 0);
    assert!(res[0].1 > 0);
}

#[test]
fn disabled_analysis_behaves_like_absent() {
    let on = simulate_with_config(r#"<sensei><analysis type="stats" array="pressure"/></sensei>"#);
    let off = simulate_with_config(
        r#"<sensei><analysis type="stats" array="pressure" enabled="false"/></sensei>"#,
    );
    assert!(on[0].0 > 0);
    assert_eq!(off[0].0, 0);
}
