//! The thread pool must change wall time only — never results.
//!
//! `shims/rayon` distributes `par_chunks` work across a real pool, but
//! each chunk writes a fixed, disjoint output range and per-chunk
//! arithmetic order is untouched, so solver fields and rendered frames
//! must be *bitwise* identical whatever the pool width. These tests pin
//! that contract, plus the pool's panic/poisoning behavior and the
//! propagation of pool-width overrides into commsim's rank threads.

use commsim::{run_ranks, with_mode, MachineModel, SchedMode};
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use rayon::pool;
use sem::cases::{pb146, CaseParams};
use sem::navier_stokes::FieldId;

/// FNV-1a 64 — tiny, dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run a short pb146 solve on 2 ranks and return every field as raw bits.
fn solve_field_bits(pool_threads: usize) -> Vec<Vec<u64>> {
    pool::with_override(pool_threads, || {
        let per_rank = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 4];
            params.order = 3;
            let mut solver = pb146(&params, 8).build(comm);
            for _ in 0..4 {
                solver.step(comm);
            }
            [
                FieldId::VelX,
                FieldId::VelY,
                FieldId::VelZ,
                FieldId::Pressure,
            ]
            .iter()
            .map(|&id| {
                solver
                    .field_device(id)
                    .expect("field exists")
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u64>>()
            })
            .collect::<Vec<_>>()
        });
        per_rank.into_iter().flatten().collect()
    })
}

#[test]
fn solver_fields_bitwise_identical_across_pool_widths() {
    let sequential = solve_field_bits(1);
    for threads in [2usize, 4] {
        let parallel = solve_field_bits(threads);
        assert_eq!(
            sequential, parallel,
            "solver fields diverged between 1 and {threads} pool threads"
        );
    }
}

/// The overlapped gather/scatter path (interior segments reduced while
/// the halo exchange is in flight) moves virtual-clock charges around
/// but must never change arithmetic order. Pin the fields at 4 pool
/// threads against the 1-thread reference under *both* rank schedulers:
/// the multi-rank pb146 solve exercises the boundary/interior split on
/// every step, and the event executor interleaves ranks differently
/// from free-running threads.
#[test]
fn overlapped_gather_scatter_bitwise_identical_in_both_sched_modes() {
    let reference = solve_field_bits(1);
    for mode in [SchedMode::Thread, SchedMode::Event] {
        let parallel = with_mode(mode, || solve_field_bits(4));
        assert_eq!(
            reference, parallel,
            "overlapped gather/scatter diverged at 4 threads under {mode:?}"
        );
    }
}

/// Render the pb146 Catalyst frames and hash every PNG written.
fn golden_hashes(pool_threads: usize, tag: &str) -> Vec<(String, u64)> {
    let dir = std::env::temp_dir().join(format!("nek-sensei-par-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    pool::with_override(pool_threads, || {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        let report = run_insitu(&InSituConfig {
            case: pb146(&params, 8),
            ranks: 2,
            steps: 3,
            trigger_every: 3,
            machine: MachineModel::test_tiny(),
            image_size: (64, 48),
            mode: InSituMode::Catalyst,
            exec: Default::default(),
            sched: Default::default(),
            faults: commsim::FaultPlan::none(),
            output_dir: Some(dir.clone()),
            trace: false,
            telemetry: false,
            recovery: Default::default(),
        });
        assert!(report.files_written > 0, "Catalyst must write images");
    });
    let mut hashes: Vec<(String, u64)> = std::fs::read_dir(&dir)
        .expect("scratch dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("png bytes");
            (name, fnv1a64(&bytes))
        })
        .collect();
    hashes.sort();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!hashes.is_empty(), "no frames rendered");
    hashes
}

#[test]
fn golden_image_hashes_identical_across_pool_widths() {
    let sequential = golden_hashes(1, "seq");
    let parallel = golden_hashes(4, "par");
    assert_eq!(
        sequential, parallel,
        "rendered frames diverged between 1 and 4 pool threads"
    );
}

#[test]
fn pool_override_propagates_into_rank_threads() {
    let widths = pool::with_override(3, || {
        run_ranks(2, MachineModel::test_tiny(), |comm| {
            let _ = comm.rank();
            pool::current_threads()
        })
    });
    assert_eq!(widths, vec![3, 3], "rank threads must adopt the override");
    // Outside the override the default is back in force.
    assert_eq!(pool::current_threads(), pool::default_threads());
}

#[test]
fn poisoned_worker_panic_reaches_caller_and_pool_survives() {
    use rayon::prelude::*;

    let panicked = std::panic::catch_unwind(|| {
        pool::with_threads(4, || {
            let mut data = vec![0.0f64; 4096];
            data.par_chunks_mut(64).for_each(|chunk| {
                if chunk[0] == 0.0 {
                    // Every chunk trips this; the first panic wins and the
                    // rest are drained without running.
                    panic!("injected worker panic");
                }
            });
        })
    });
    assert!(panicked.is_err(), "worker panic must reach the submitter");

    // The pool is not wedged: the next parallel op completes and the
    // results are correct.
    pool::with_threads(4, || {
        let mut data = vec![1.0f64; 4096];
        data.par_chunks_mut(64).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    });
}
