//! Property-based tests over the stack's core data structures and
//! invariants (proptest).

use meshdata::writer::{write_vtu, Encoding};
use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
use proptest::prelude::*;
use transport::{marshal_blocks, unmarshal_blocks};

/// Random small hex-brick grid with a random point scalar.
fn arb_grid() -> impl Strategy<Value = UnstructuredGrid> {
    (1usize..4, 1usize..4, 1usize..4)
        .prop_flat_map(|(nx, ny, nz)| {
            let np = (nx + 1) * (ny + 1) * (nz + 1);
            (
                Just((nx, ny, nz)),
                proptest::collection::vec(-1.0e6..1.0e6f64, np),
            )
        })
        .prop_map(|((nx, ny, nz), values)| {
            let mut g = UnstructuredGrid::new();
            for k in 0..=nz {
                for j in 0..=ny {
                    for i in 0..=nx {
                        g.add_point([i as f64 * 0.5, j as f64 * 0.7, k as f64 * 0.9]);
                    }
                }
            }
            let id = |i: usize, j: usize, k: usize| (i + (nx + 1) * (j + (ny + 1) * k)) as i64;
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        g.add_cell(
                            CellType::Hexahedron,
                            &[
                                id(i, j, k),
                                id(i + 1, j, k),
                                id(i + 1, j + 1, k),
                                id(i, j + 1, k),
                                id(i, j, k + 1),
                                id(i + 1, j, k + 1),
                                id(i + 1, j + 1, k + 1),
                                id(i, j + 1, k + 1),
                            ],
                        );
                    }
                }
            }
            g.add_point_data(DataArray::scalars_f64("s", values))
                .unwrap();
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vtu_appended_roundtrip_any_grid(g in arb_grid()) {
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Appended, &mut buf).unwrap();
        let back = meshdata::reader::read_vtu(&buf).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn vtu_ascii_roundtrip_any_grid(g in arb_grid()) {
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Ascii, &mut buf).unwrap();
        let back = meshdata::reader::read_vtu(&buf).unwrap();
        prop_assert_eq!(back.n_points(), g.n_points());
        prop_assert_eq!(back.connectivity, g.connectivity);
        // Rust's float formatting round-trips f64 exactly.
        prop_assert_eq!(&back.point_data[0], &g.point_data[0]);
    }

    #[test]
    fn bp_roundtrip_any_grid(g in arb_grid(), step in 0u64..1_000_000, time in 0.0..1.0e6f64) {
        let mb = MultiBlock::local(0, 3, g);
        let payload = marshal_blocks(7, step, time, &mb);
        let back = unmarshal_blocks(&payload).unwrap();
        prop_assert_eq!(back.producer, 7);
        prop_assert_eq!(back.step, step);
        prop_assert_eq!(back.time, time);
        prop_assert_eq!(&back.blocks[0].1, mb.blocks[0].as_ref().unwrap());
    }

    #[test]
    fn bp_never_panics_on_mutated_payloads(g in arb_grid(), flip in 0usize..4096, val in 0u8..=255) {
        let mb = MultiBlock::local(0, 1, g);
        let mut payload = marshal_blocks(0, 0, 0.0, &mb);
        let idx = flip % payload.len();
        payload[idx] = val;
        // Any outcome is fine except a panic.
        let _ = unmarshal_blocks(&payload);
    }

    #[test]
    fn bp_never_panics_on_truncation(g in arb_grid(), cut_frac in 0.0..1.0f64) {
        let mb = MultiBlock::local(0, 1, g);
        let payload = marshal_blocks(0, 0, 0.0, &mb);
        let cut = (payload.len() as f64 * cut_frac) as usize;
        let _ = unmarshal_blocks(&payload[..cut]);
    }

    #[test]
    fn xml_escape_roundtrip(s in "[ -~]{0,64}") {
        let escaped = meshdata::xml::escape(&s);
        let doc = format!("<a x=\"{escaped}\">{escaped}</a>");
        let node = meshdata::xml::parse(&doc).unwrap();
        prop_assert_eq!(node.attr("x").unwrap(), s.as_str());
        prop_assert_eq!(node.text.as_str(), s.as_str());
    }

    #[test]
    fn grid_bounds_contain_all_points(g in arb_grid()) {
        let b = g.bounds().unwrap();
        for p in &g.points {
            for d in 0..3 {
                prop_assert!(p[d] >= b[2 * d] && p[d] <= b[2 * d + 1]);
            }
        }
    }

    #[test]
    fn png_encoder_total_size_is_consistent(w in 1usize..64, h in 1usize..64) {
        let fb = render::Framebuffer::new(w, h);
        let png = render::image::encode_png(&fb);
        // Signature + IHDR(25) + IDAT(>raw) + IEND(12).
        let raw = (w * 3 + 1) * h;
        prop_assert!(png.len() > raw);
        prop_assert_eq!(&png[png.len() - 8..png.len() - 4], b"IEND");
    }
}

/// Multiplicity invariants of gather–scatter under random mesh shapes:
/// Σ mult_inv ⊙ (sum of ones) == number of *global* nodes.
#[test]
fn gs_multiplicity_partitions_unity() {
    use commsim::{run_ranks, MachineModel, ReduceOp};
    use sem::gs::GatherScatter;
    use sem::mesh::{LocalMesh, MeshSpec};
    use std::sync::Arc;

    for (order, elems, periodic, ranks) in [
        (2usize, [2usize, 2, 3], [false, false, false], 3usize),
        (3, [1, 2, 4], [true, false, false], 2),
        (2, [2, 1, 4], [true, true, true], 4),
    ] {
        let res = run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(order, elems, [1.0; 3], periodic));
            let mesh = LocalMesh::new(spec.clone(), comm.rank(), comm.size());
            let gs = GatherScatter::new(&mesh, comm);
            // Each local node weighted by 1/multiplicity sums to the number
            // of distinct global nodes.
            let local: f64 = gs.mult_inv().iter().sum();
            let total = comm.allreduce(local, ReduceOp::Sum);
            let expected =
                (spec.n_nodes_axis(0) * spec.n_nodes_axis(1) * spec.n_nodes_axis(2)) as f64;
            (total, expected)
        });
        for (total, expected) in res {
            assert!(
                (total - expected).abs() < 1e-9,
                "order={order} elems={elems:?} periodic={periodic:?}: {total} vs {expected}"
            );
        }
    }
}

// ---- scheduler differential: random programs, both executors ----------

/// One round of a randomly generated communication program. Every rank
/// executes the same round shape (rank-dependent payloads/advances), so
/// any program is deadlock-free by construction: sends are eager and each
/// recv has a matching send in the same round.
#[derive(Debug, Clone)]
enum CommOp {
    /// Shifted ring exchange: send to `(r+s) % n`, recv from `(r+n-s) % n`.
    RingExchange {
        shift: usize,
        bytes: u64,
    },
    Barrier,
    AllreduceSum,
    AllreduceMax,
    Allgather,
    /// Rank-dependent clock advance (µs per rank index).
    Advance {
        per_rank_us: u64,
    },
}

fn arb_comm_op() -> impl Strategy<Value = CommOp> {
    (0usize..6, 1usize..8, 1u64..4096, 1u64..500).prop_map(|(kind, shift, bytes, per_rank_us)| {
        match kind {
            0 | 1 => CommOp::RingExchange { shift, bytes },
            2 => CommOp::Barrier,
            3 => CommOp::AllreduceSum,
            4 => CommOp::AllreduceMax,
            5 if per_rank_us % 2 == 0 => CommOp::Allgather,
            _ => CommOp::Advance { per_rank_us },
        }
    })
}

/// Run `prog` on `n` ranks under `mode`; per rank, return the exact
/// sequence of received/reduced values (as bit patterns, in arrival
/// order) for message-order comparison across executors.
fn run_comm_program(
    mode: commsim::SchedMode,
    n: usize,
    prog: std::sync::Arc<Vec<CommOp>>,
) -> Vec<commsim::RankResult<Vec<u64>>> {
    use commsim::ReduceOp;
    commsim::with_mode(mode, move || {
        commsim::run_ranks_with_registry(
            n,
            commsim::MachineModel::test_tiny(),
            memtrack::Registry::new(),
            move |comm| {
                let n = comm.size();
                let r = comm.rank();
                let mut received = Vec::new();
                for (i, op) in prog.iter().enumerate() {
                    let tag = 100 + i as u64;
                    match op {
                        CommOp::RingExchange { shift, bytes } => {
                            let s = 1 + shift % (n - 1);
                            let payload = ((r as u64) << 16) | i as u64;
                            comm.send((r + s) % n, tag, payload, *bytes);
                            received.push(comm.recv::<u64>((r + n - s) % n, tag));
                        }
                        CommOp::Barrier => comm.barrier(),
                        CommOp::AllreduceSum => {
                            let v = comm.allreduce((r + i) as f64 * 0.5, ReduceOp::Sum);
                            received.push(v.to_bits());
                        }
                        CommOp::AllreduceMax => {
                            let v = comm.allreduce(r as f64 - i as f64, ReduceOp::Max);
                            received.push(v.to_bits());
                        }
                        CommOp::Allgather => {
                            received.extend(comm.allgather((r * 31 + i) as u64, 8));
                        }
                        CommOp::Advance { per_rank_us } => {
                            comm.advance(r as f64 * *per_rank_us as f64 * 1e-6);
                        }
                    }
                }
                received
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid program over any world size runs identically on the
    /// thread executor and the discrete-event scheduler: same per-rank
    /// message/reduction sequences, same final virtual clock bits, same
    /// CommStats. Completion itself is the no-deadlock property — the
    /// event scheduler's bounded-step watchdog turns a scheduling bug
    /// into an immediate panic, not a hang.
    #[test]
    fn random_programs_run_identically_on_both_executors(
        n in 2usize..64,
        prog in proptest::collection::vec(arb_comm_op(), 1..8)
    ) {
        let prog = std::sync::Arc::new(prog);
        let a = run_comm_program(commsim::SchedMode::Thread, n, prog.clone());
        let b = run_comm_program(commsim::SchedMode::Event, n, prog);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.rank, y.rank);
            prop_assert_eq!(&x.value, &y.value);
            prop_assert_eq!(x.time.to_bits(), y.time.to_bits());
            prop_assert_eq!(x.stats, y.stats);
        }
    }
}

/// An *invalid* program (a recv whose send never happens) must not hang
/// the event scheduler: when every live rank is blocked it diagnoses the
/// deadlock and panics with the per-rank wait states.
#[test]
fn event_scheduler_diagnoses_deadlock_instead_of_hanging() {
    let err = std::panic::catch_unwind(|| {
        commsim::with_mode(commsim::SchedMode::Event, || {
            commsim::run_ranks(3, commsim::MachineModel::test_tiny(), |comm| {
                if comm.rank() == 0 {
                    // Nobody ever sends on tag 99.
                    comm.recv::<u64>(1, 99);
                }
                comm.barrier();
            })
        })
    })
    .expect_err("the deadlocked world must panic, not hang");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock"),
        "panic must carry the deadlock diagnostic: {msg}"
    );
}

/// A small valid NEKFLD01 dump to mutate in the fuzz cases below.
fn valid_fld_bytes() -> Vec<u8> {
    use memtrack::Accountant;
    use sem::snapshot::{FieldSnapshot, SnapshotField, SnapshotPool};
    let pool = SnapshotPool::new(Accountant::new("fuzz"));
    let fields = vec![
        SnapshotField::new("pressure", 1, vec![0.25, -1.5, 3.0]),
        SnapshotField::new("velocity", 3, (0..9).map(f64::from).collect()),
    ];
    let snap = FieldSnapshot::new(11, 0.75, 3, fields, &pool);
    nek_sensei::encode_fld(&snap).bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // A checkpoint reader fed disk garbage must reject it with an error,
    // never panic or over-allocate (the supervisor turns parse errors into
    // generation quarantines, so they have to surface as values).
    #[test]
    fn read_fld_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        let _ = nek_sensei::read_fld(&bytes);
    }

    #[test]
    fn read_fld_never_panics_on_truncated_dump(cut in 0usize..400) {
        let bytes = valid_fld_bytes();
        let cut = cut.min(bytes.len());
        let r = nek_sensei::read_fld(&bytes[..cut]);
        if cut < bytes.len() {
            prop_assert!(r.is_err(), "truncation at {cut} must not parse");
        } else {
            prop_assert!(r.is_ok());
        }
    }

    #[test]
    fn read_fld_never_panics_on_bit_flipped_dump(
        byte in 0usize..4096, bit in 0u8..8
    ) {
        let mut bytes = valid_fld_bytes();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        // Bit rot in the payload may still parse (integrity is the
        // manifest CRC's job); the reader just must not panic.
        let _ = nek_sensei::read_fld(&bytes);
    }
}
