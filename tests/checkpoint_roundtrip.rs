//! Integration: solver state → SENSEI adaptor → VTU files on disk → reader
//! → bit-exact comparison with the live fields.

use commsim::{run_ranks, MachineModel};
use insitu::analyses::VtuCheckpointAnalysis;
use insitu::{AnalysisAdaptor, DataAdaptor};
use meshdata::reader::read_vtu;
use meshdata::Centering;
use nek_sensei::SnapshotPlane;
use sem::cases::{pb146, CaseParams};
use sem::navier_stokes::FieldId;
use sem::snapshot::{SnapshotPool, SnapshotSpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nek_sensei_it_{tag}_{}", std::process::id()))
}

#[test]
fn vtu_checkpoint_roundtrips_bit_exact_across_ranks() {
    let dir = temp_dir("roundtrip");
    let dir2 = dir.clone();
    let ranks = 3;
    let results = run_ranks(ranks, MachineModel::polaris(), move |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 6];
        params.order = 2;
        let mut solver = pb146(&params, 6).build(comm);
        for _ in 0..4 {
            solver.step(comm);
        }
        let mut chk = VtuCheckpointAnalysis::new(
            "mesh",
            vec!["pressure".into(), "velocity".into()],
            Some(dir2.clone()),
        );
        let plane = SnapshotPlane::new(comm, &solver);
        let mut da = plane.publish(comm, &mut solver, ["pressure", "velocity"]);
        chk.execute(comm, &mut da).expect("checkpoint");
        comm.barrier();

        // Restart: read this rank's piece and compare every field value.
        let piece = dir2.join(format!(
            "chk_{:06}_b{}.vtu",
            solver.step_index(),
            comm.rank()
        ));
        let grid = read_vtu(&std::fs::read(&piece).expect("piece exists")).expect("valid");
        grid.validate().expect("valid grid");
        let p = grid
            .find_array("pressure", Centering::Point)
            .expect("pressure");
        let v = grid
            .find_array("velocity", Centering::Point)
            .expect("velocity");
        let p_live = solver.field_device(FieldId::Pressure).expect("live");
        let w_live = solver.field_device(FieldId::VelZ).expect("live");
        let mut max_err: f64 = 0.0;
        for i in 0..p_live.len() {
            max_err = max_err.max((p.get(i, 0) - p_live[i]).abs());
            max_err = max_err.max((v.get(i, 2) - w_live[i]).abs());
        }
        (grid.n_points(), max_err)
    });
    for (points, err) in results {
        assert!(points > 0);
        assert_eq!(err, 0.0, "roundtrip must be bit-exact");
    }
    // The parallel index exists and references all pieces.
    let pvtu_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.path().extension().is_some_and(|x| x == "pvtu"))
        .expect("pvtu written");
    let text = std::fs::read_to_string(pvtu_path.path()).unwrap();
    for r in 0..ranks {
        assert!(text.contains(&format!("_b{r}.vtu")), "piece {r} indexed");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fld_and_vtu_checkpoints_are_consistent() {
    // The NekRS-style raw dump and the SENSEI VTU path must expose the
    // same number of field values.
    let results = run_ranks(1, MachineModel::polaris(), |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 2];
        params.order = 2;
        let mut solver = pb146(&params, 2).build(comm);
        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
        let spec = SnapshotSpec {
            pressure: true,
            velocity: true,
            ..SnapshotSpec::default()
        };
        let snap = solver.publish_snapshot(comm, &spec, &pool);
        let mut fld = nek_sensei::FldCheckpointer::new(comm, None);
        let fld_bytes = fld.write(comm, &snap);
        let plane = SnapshotPlane::new(comm, &solver);
        let mut da = plane.publish(comm, &mut solver, ["pressure", "velocity"]);
        let mut mb = da.mesh(comm, "mesh").unwrap();
        da.add_array(comm, &mut mb, "mesh", Centering::Point, "pressure")
            .unwrap();
        da.add_array(comm, &mut mb, "mesh", Centering::Point, "velocity")
            .unwrap();
        let n = solver.n_nodes();
        (fld_bytes, n as u64, mb.local_points() as u64)
    });
    let (fld_bytes, n, vtu_points) = results[0];
    // fld: 4 fields (u,v,w,p) × 8 B × n + small header.
    assert!(fld_bytes >= 4 * 8 * n);
    assert!(fld_bytes < 4 * 8 * n + 200);
    assert_eq!(vtu_points, n);
}
