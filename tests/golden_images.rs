//! Golden-image regression: the render pipeline's PNG output for the two
//! paper cases, hashed and pinned. Rendering is a pure function of the
//! (deterministic) solver state, so these bytes are bit-stable across
//! runs and machines; any change to the solver, the filters, the
//! rasterizer, the colormaps or the PNG encoder shows up here.
//!
//! **Blessing new goldens:** when a change is *intentional*, run
//!
//! ```text
//! cargo test --test golden_images -- --nocapture
//! ```
//!
//! and copy the `computed 0x...` values from the failure messages into
//! the `GOLDEN_*` constants below. Include the rationale in the commit.

use commsim::MachineModel;
use nek_sensei::{
    run_insitu, run_intransit, EndpointMode, InSituConfig, InSituMode, InTransitConfig,
};
use sem::cases::{pb146, rbc, CaseParams};
use transport::{QueuePolicy, StagingLink, WriterConfig};

/// FNV-1a 64 — tiny, dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nek-sensei-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn assert_golden(dir: &std::path::Path, file: &str, expected: u64) {
    let path = dir.join(file);
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("golden image {path:?} was not rendered: {e}"));
    let got = fnv1a64(&bytes);
    assert_eq!(
        got,
        expected,
        "golden image {file} changed: computed {got:#018x}, pinned {expected:#018x} \
         ({} bytes). If the rendering change is intentional, re-bless: run \
         `cargo test --test golden_images -- --nocapture` and update the \
         constant in tests/golden_images.rs.",
        bytes.len()
    );
}

// ---- pb146 pebble bed, in situ Catalyst (§4.1) -------------------------

const GOLDEN_PB146_PRESSURE_SLICE: u64 = 0xf3f7390bab19e95c;
const GOLDEN_PB146_VELOCITY_CONTOUR: u64 = 0x1e9049e0312575fe;

#[test]
fn pb146_insitu_frames_match_goldens() {
    let dir = scratch_dir("pb146");
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    let report = run_insitu(&InSituConfig {
        case: pb146(&params, 8),
        ranks: 2,
        steps: 3,
        trigger_every: 3,
        machine: MachineModel::test_tiny(),
        image_size: (64, 48),
        mode: InSituMode::Catalyst,
        exec: Default::default(),
        sched: Default::default(),
        faults: commsim::FaultPlan::none(),
        output_dir: Some(dir.clone()),
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    });
    assert!(report.files_written > 0, "Catalyst must write images");
    // Trigger fires once, at step 3: the paper's two-image setup.
    assert_golden(
        &dir,
        "pressure_slice_000003.png",
        GOLDEN_PB146_PRESSURE_SLICE,
    );
    assert_golden(
        &dir,
        "velocity_contour_000003.png",
        GOLDEN_PB146_VELOCITY_CONTOUR,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Rayleigh–Bénard, in transit Catalyst endpoint (§4.2) --------------

const GOLDEN_RBC_TEMPERATURE_SLICE: u64 = 0x05fb35f63597c9ac;
const GOLDEN_RBC_VELOCITY_CONTOUR: u64 = 0xd45af6854e8f9b02;

#[test]
fn rbc_intransit_frames_match_goldens() {
    let dir = scratch_dir("rbc");
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    let report = run_intransit(&InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps: 4,
        trigger_every: 2,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Catalyst,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (64, 48),
        output_dir: Some(dir.clone()),
        faults: commsim::FaultPlan::none(),
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    });
    assert_eq!(report.endpoint_steps, 2, "triggers at steps 2 and 4");
    // The endpoint renders on every delivered trigger; pin the last one.
    assert_golden(
        &dir,
        "temperature_slice_000004.png",
        GOLDEN_RBC_TEMPERATURE_SLICE,
    );
    assert_golden(
        &dir,
        "velocity_contour_000004.png",
        GOLDEN_RBC_VELOCITY_CONTOUR,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
