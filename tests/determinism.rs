//! Integration: the reproducibility claims the documentation makes.
//!
//! Virtual time must depend only on the operation sequence — never on OS
//! scheduling — and the solver must be bitwise deterministic across runs,
//! because the figure harnesses' value rests on both properties.

use commsim::MachineModel;
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn one_run(mode: InSituMode) -> (f64, u64, u64, u64) {
    let mut params = CaseParams::pb146_default();
    params.elems = [3, 3, 4];
    params.order = 2;
    let r = run_insitu(&InSituConfig {
        case: pb146(&params, 8),
        ranks: 3,
        steps: 5,
        trigger_every: 2,
        machine: MachineModel::polaris(),
        image_size: (64, 48),
        mode,
        exec: Default::default(),
        sched: Default::default(),
        faults: commsim::FaultPlan::none(),
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    });
    (
        r.metrics.time_to_solution,
        r.metrics.memory.host_aggregate_peak,
        r.metrics.totals.bytes_d2h,
        r.bytes_written,
    )
}

#[test]
fn virtual_time_is_bitwise_reproducible() {
    for mode in [
        InSituMode::Original,
        InSituMode::Checkpointing,
        InSituMode::Catalyst,
    ] {
        let a = one_run(mode);
        let b = one_run(mode);
        assert_eq!(
            a.0.to_bits(),
            b.0.to_bits(),
            "{mode:?}: virtual time must not depend on scheduling"
        );
        assert_eq!(a.1, b.1, "{mode:?}: memory peaks must be deterministic");
        assert_eq!(a.2, b.2, "{mode:?}: D2H traffic must be deterministic");
        assert_eq!(a.3, b.3, "{mode:?}: bytes written must be deterministic");
    }
}

#[test]
fn derating_scales_compute_time_exactly() {
    // The scaling methodology's core invariant: throughput derating by F
    // multiplies every rate-bound time by exactly F (latency-bound costs
    // are untouched, so total time grows by less — that part is checked
    // only for monotonicity).
    let mut params = CaseParams::pb146_default();
    params.elems = [3, 3, 4];
    params.order = 2;
    let mk = |machine: MachineModel| {
        let r = run_insitu(&InSituConfig {
            case: pb146(&params, 8),
            ranks: 2,
            steps: 3,
            trigger_every: 2,
            machine,
            image_size: (64, 48),
            mode: InSituMode::Checkpointing,
            exec: Default::default(),
            sched: Default::default(),
            faults: commsim::FaultPlan::none(),
            output_dir: None,
            trace: false,
            telemetry: false,
            recovery: Default::default(),
        });
        (
            r.metrics.time_to_solution,
            r.metrics.totals.time_gpu_compute,
        )
    };
    let (plain_total, plain_gpu) = mk(MachineModel::polaris());
    let (derated_total, derated_gpu) = mk(MachineModel::polaris().derate_throughput(50.0));
    let ratio = derated_gpu / plain_gpu;
    assert!(
        (ratio - 50.0).abs() < 1e-6,
        "GPU compute must scale by exactly 50x, got {ratio}"
    );
    assert!(derated_total > plain_total, "total time must not shrink");
}
