//! Integration: the full §4.2 in transit stack — two concurrent worlds
//! bridged by the SST-analogue staging engine.

use commsim::MachineModel;
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig};
use sem::cases::{rbc, CaseParams};
use transport::{QueuePolicy, StagingLink};

fn config(sim_ranks: usize, mode: EndpointMode) -> InTransitConfig {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, sim_ranks.max(2)];
    params.order = 2;
    InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks,
        ratio: 4,
        steps: 6,
        trigger_every: 3,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: 0,
        staging_dir: None,
        image_size: (80, 60),
        output_dir: None,
        faults: commsim::FaultPlan::none(),
        writer_config: transport::WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

#[test]
fn endpoint_receives_every_triggered_step() {
    for mode in [EndpointMode::Checkpointing, EndpointMode::Catalyst] {
        let r = run_intransit(&config(8, mode));
        assert_eq!(r.endpoint_ranks, 2, "4:1 ratio over 8 sim ranks");
        assert_eq!(r.endpoint_steps, 2, "triggers at steps 3 and 6");
        assert!(r.endpoint_bytes_received > 0);
        assert!(r.endpoint_bytes_written > 0);
    }
}

#[test]
fn simulation_never_touches_the_filesystem_in_transit() {
    for mode in [
        EndpointMode::NoTransport,
        EndpointMode::Checkpointing,
        EndpointMode::Catalyst,
    ] {
        let r = run_intransit(&config(4, mode));
        assert_eq!(
            r.sim.totals.bytes_written_fs,
            0,
            "{}: all storage I/O must happen on the endpoint",
            r.mode.label()
        );
    }
}

#[test]
fn transported_modes_cost_the_sim_little() {
    let none = run_intransit(&config(4, EndpointMode::NoTransport));
    let cat = run_intransit(&config(4, EndpointMode::Catalyst));
    let overhead = cat.sim.mean_step_time / none.sim.mean_step_time - 1.0;
    assert!(
        overhead < 0.5,
        "in-transit sim overhead should be modest, got {:.1}%",
        overhead * 100.0
    );
}

#[test]
fn endpoint_image_bytes_smaller_than_checkpoint_bytes() {
    let chk = run_intransit(&config(8, EndpointMode::Checkpointing));
    let cat = run_intransit(&config(8, EndpointMode::Catalyst));
    // Same data crossed the wire either way...
    assert_eq!(chk.endpoint_bytes_received, cat.endpoint_bytes_received);
    // ...but VTU checkpoints outweigh PNGs even at miniature scale? Not
    // necessarily — what must hold is that both wrote something and the
    // checkpoint volume scales with the received data.
    assert!(chk.endpoint_bytes_written as f64 > 0.5 * chk.endpoint_bytes_received as f64);
}

#[test]
fn no_transport_mode_runs_sensei_with_no_analyses() {
    let r = run_intransit(&config(4, EndpointMode::NoTransport));
    assert_eq!(r.endpoint_ranks, 0);
    assert_eq!(r.endpoint_bytes_received, 0);
    // No staging, no D2H for analysis (paper's reference measurement).
    assert_eq!(r.sim.totals.bytes_d2h, 0);
}
