//! Integration: the staging tier — one writer stream fanned out to N
//! consumer sessions over both wire engines, with cached rendering,
//! late-joiner catch-up, and typed short-read surfacing.

use commsim::{run_ranks_with_state, with_mode, FaultPlan, MachineModel, SchedMode, TelemetryHub};
use insitu::AnalysisAdaptor as _;
use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};
use nek_sensei::{run_intransit, EndpointMode, InTransitConfig};
use sem::cases::{rbc, CaseParams};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;
use transport::wire::loopback_listener;
use transport::{
    ConsumerClient, FrameMsg, QueuePolicy, SessionSpec, SstWriter, StagingLink, StagingNetwork,
    StagingReport, StagingService, TransportAnalysis, TransportError, WireKind, WriterConfig,
};

const STEPS: u64 = 4;
const CONSUMERS: usize = 3;

fn block(rank: usize, nranks: usize) -> MultiBlock {
    let z0 = rank as f64;
    let mut g = UnstructuredGrid::new();
    for z in [z0, z0 + 1.0] {
        for y in [0.0, 1.0] {
            for x in [0.0, 1.0] {
                g.add_point([x, y, z]);
            }
        }
    }
    g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
    g.add_point_data(DataArray::scalars_f64(
        "pressure",
        (0..8).map(|i| i as f64 + 100.0 * rank as f64).collect(),
    ))
    .unwrap();
    MultiBlock::local(rank, nranks, g)
}

fn drive_writers(writers: Vec<SstWriter>, steps: u64) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, writer| {
            let mut analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writer);
            for step in 1..=steps {
                let mut da = insitu::data_adaptor::StaticDataAdaptor::new(
                    "mesh",
                    block(comm.rank(), comm.size()),
                    step as f64 * 0.1,
                    step,
                );
                analysis.execute(comm, &mut da).unwrap();
            }
        });
    })
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nek_fanout_{}_{}_{}",
        tag,
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "_")
    ));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn assert_full_fanout(report: &StagingReport, collected: &[Vec<FrameMsg>]) {
    assert_eq!(report.steps, STEPS);
    assert_eq!(report.sessions.len(), CONSUMERS);
    for frames in collected {
        let steps: Vec<u64> = frames.iter().map(|f| f.step).collect();
        assert_eq!(steps, (1..=STEPS).collect::<Vec<_>>());
        assert!(frames.iter().all(|f| !f.png.is_empty()));
    }
    // Identical specs: each step rasterizes once, every other session
    // hits the shared frame cache.
    assert_eq!(report.cache_misses, STEPS);
    assert_eq!(report.cache_hits, (CONSUMERS as u64 - 1) * STEPS);
    assert!(report.cache_hit_rate() > 0.0);
}

/// Channel-wire fan-out: three concurrent local sessions all see every
/// step, rendered once per step.
#[test]
fn channel_fanout_three_concurrent_consumers() {
    let dir = tempdir("channel");
    let (writers, mut readers) = StagingNetwork::build_wired(
        2,
        1,
        16,
        StagingLink::test_tiny(),
        QueuePolicy::Block,
        FaultPlan::none(),
        WriterConfig::default(),
        WireKind::Channel,
    )
    .expect("channel wiring is infallible");
    let service = StagingService::new(readers.remove(0), 2, &dir, 16);
    let handle = service.handle();
    let drains: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let mut client = handle.attach_local(SessionSpec::default(), 4);
            std::thread::spawn(move || client.drain(Duration::from_secs(120)).expect("drain"))
        })
        .collect();
    let sim = drive_writers(writers, STEPS);
    let report = run_ranks_with_state(MachineModel::test_tiny(), vec![service], |comm, mut s| {
        s.run(comm).unwrap()
    })
    .remove(0);
    sim.join().unwrap();
    let collected: Vec<Vec<FrameMsg>> = drains.into_iter().map(|d| d.join().unwrap()).collect();
    assert_full_fanout(&report, &collected);
    std::fs::remove_dir_all(&dir).ok();
}

/// TCP everywhere: writers reach the service over loopback sockets AND
/// the three consumer sessions attach over the TCP consumer protocol.
/// Runs under both rank schedulers — all socket waits sit behind
/// `external_wait`, so the event-driven world must not deadlock.
fn tcp_fanout(mode: SchedMode, tag: &str) {
    let dir = tempdir(tag);
    let report = with_mode(mode, || {
        let (writers, mut readers) = StagingNetwork::build_wired(
            2,
            1,
            16,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            FaultPlan::none(),
            WriterConfig::default(),
            WireKind::Tcp,
        )
        .expect("loopback sockets");
        let service = StagingService::new(readers.remove(0), 2, &dir, 16);
        let (consumer_listener, port) = loopback_listener().expect("consumer port");
        service.listen_consumers(consumer_listener);
        let addr = format!("127.0.0.1:{port}");
        let drains: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = ConsumerClient::connect(&addr, &SessionSpec::default(), 4)
                        .expect("connect");
                    client.drain(Duration::from_secs(120)).expect("drain")
                })
            })
            .collect();
        // Hold the stream until every session is attached so all three
        // ride from step 1 (otherwise late joiners would catch up from
        // the parked files and the hit counts would be timing-dependent).
        let handle = service.handle();
        while handle.attached() < CONSUMERS {
            std::thread::sleep(Duration::from_millis(5));
        }
        let sim = drive_writers(writers, STEPS);
        let report =
            run_ranks_with_state(MachineModel::test_tiny(), vec![service], |comm, mut s| {
                s.run(comm).unwrap()
            })
            .remove(0);
        sim.join().unwrap();
        let collected: Vec<Vec<FrameMsg>> = drains.into_iter().map(|d| d.join().unwrap()).collect();
        assert_full_fanout(&report, &collected);
        report
    });
    assert_eq!(report.short_reads, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_fanout_three_consumers_thread_sched() {
    tcp_fanout(SchedMode::Thread, "tcp_thread");
}

#[test]
fn tcp_fanout_three_consumers_event_sched() {
    tcp_fanout(SchedMode::Event, "tcp_event");
}

/// A late joiner over TCP replays the parked BP files before riding the
/// live stream: it still sees the full step sequence from step 1.
#[test]
fn tcp_late_joiner_replays_parked_steps() {
    let dir = tempdir("tcp_late");
    let (writers, mut readers) = StagingNetwork::build_wired(
        1,
        1,
        16,
        StagingLink::test_tiny(),
        QueuePolicy::Block,
        FaultPlan::none(),
        WriterConfig::default(),
        WireKind::Tcp,
    )
    .expect("loopback sockets");
    let service = StagingService::new(readers.remove(0), 1, &dir, 16);
    let (consumer_listener, port) = loopback_listener().expect("consumer port");
    service.listen_consumers(consumer_listener);
    let addr = format!("127.0.0.1:{port}");
    let mut early = ConsumerClient::connect(&addr, &SessionSpec::default(), 8).expect("connect");
    let handle = service.handle();
    while handle.attached() < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let sim = drive_writers(writers, STEPS);
    let svc = std::thread::spawn(move || {
        run_ranks_with_state(MachineModel::test_tiny(), vec![service], |comm, mut s| {
            s.run(comm).unwrap()
        })
        .remove(0)
    });
    // Join late: only after the first live frame is out.
    let first = early.next_frame(Duration::from_secs(120)).unwrap().unwrap();
    assert_eq!(first.step, 1);
    let mut late = ConsumerClient::connect(&addr, &SessionSpec::default(), 8).expect("connect");
    let late_frames = late.drain(Duration::from_secs(120)).expect("drain");
    let mut early_frames = vec![first];
    early_frames.extend(early.drain(Duration::from_secs(120)).expect("drain"));
    sim.join().unwrap();
    let report = svc.join().unwrap();
    let steps: Vec<u64> = late_frames.iter().map(|f| f.step).collect();
    assert_eq!(steps, (1..=STEPS).collect::<Vec<_>>());
    assert_eq!(early_frames.len(), STEPS as usize);
    assert!(
        report.sessions[1].catchup_steps >= 1,
        "late joiner never caught up from the parked files: {:?}",
        report.sessions
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A connection that dies mid-frame surfaces as a typed transient
/// `TransportError::ShortRead`, counted under `transport/short_reads`,
/// and the stream still drains to a clean end afterwards.
#[test]
fn mid_frame_disconnect_is_a_typed_short_read() {
    let (listener, port) = loopback_listener().expect("data port");
    let reader = StagingNetwork::tcp_reader(listener, vec![0], 8, FaultPlan::none());
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(format!("127.0.0.1:{port}")).unwrap();
        // Claim a 64-byte frame body but send only 10 bytes, then die.
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[7u8; 10]).unwrap();
    });
    let hub = TelemetryHub::default();
    let hub_for_rank = hub.clone();
    run_ranks_with_state(
        MachineModel::test_tiny(),
        vec![reader],
        move |comm, mut r| {
            comm.enable_telemetry(&hub_for_rank, 0);
            let err = loop {
                match r.recv_step(comm) {
                    Err(e) => break e,
                    Ok(None) => panic!("short read swallowed as clean end-of-stream"),
                    Ok(Some(_)) => {}
                }
            };
            assert!(
                matches!(err, TransportError::ShortRead { wanted: 64, got: 10 }),
                "unexpected error: {err:?}"
            );
            assert!(!err.is_fatal(), "short reads must be survivable");
            assert_eq!(r.short_reads(), 1);
            // The dead connection then reads as end-of-stream.
            assert!(matches!(r.recv_step(comm), Ok(None)));
        },
    );
    writer.join().unwrap();
    let count = hub
        .metrics_snapshot()
        .into_iter()
        .find(|(name, _)| name.ends_with("transport/short_reads"))
        .map(|(_, v)| v);
    assert!(
        matches!(count, Some(telemetry::MetricValue::Counter(1))),
        "transport/short_reads not counted: {count:?}"
    );
}

/// The full in-transit workflow with `staging_consumers > 0`: the
/// endpoint world runs the staging service instead of the fixed
/// analysis, and the run report carries the fan-out accounting.
#[test]
fn intransit_workflow_with_staging_fanout() {
    let mut params = CaseParams::rbc_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    let dir = tempdir("intransit");
    let cfg = InTransitConfig {
        case: rbc(&params, 1e4, 0.7),
        sim_ranks: 4,
        ratio: 4,
        steps: 6,
        trigger_every: 3,
        machine: MachineModel::juwels_booster(),
        link: StagingLink::ucx_hdr200(),
        queue_capacity: 8,
        policy: QueuePolicy::Block,
        mode: EndpointMode::Catalyst,
        sched: Default::default(),
        wire: Default::default(),
        staging_consumers: CONSUMERS,
        staging_dir: Some(dir.clone()),
        image_size: (80, 60),
        output_dir: None,
        faults: FaultPlan::none(),
        writer_config: WriterConfig::default(),
        fallback_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    };
    let report = run_intransit(&cfg);
    let staging = report.staging.expect("staging report present");
    assert_eq!(staging.steps, 2, "triggers at steps 3 and 6");
    assert_eq!(staging.sessions.len(), CONSUMERS);
    assert_eq!(staging.cache_misses, 2);
    assert_eq!(staging.cache_hits, (CONSUMERS as u64 - 1) * 2);
    assert!(staging.cache_hit_rate() > 0.0);
    assert!(report.endpoint_bytes_received > 0);
    std::fs::remove_dir_all(&dir).ok();
}
