//! Integration: the snapshot data plane's lifecycle guarantees — pooled
//! staging buffers reach an allocation-free steady state, the pipelined
//! high-water mark stays bounded at `PIPELINE_DEPTH` snapshots, both
//! execution modes render bitwise-identical frames, and a stalled
//! consumer throttles the producer without corrupting the output stream.

use commsim::{run_ranks, ConsumerStall, FaultPlan, MachineModel};
use nek_sensei::{run_insitu, ExecMode, InSituConfig, InSituMode, PIPELINE_DEPTH};
use sem::cases::{pb146, CaseParams};
use sem::snapshot::{SnapshotPool, SnapshotSpec};
use std::collections::BTreeMap;

fn catalyst_config(exec: ExecMode) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [2, 2, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 4),
        ranks: 2,
        steps: 8,
        trigger_every: 2,
        machine: MachineModel::polaris(),
        image_size: (64, 48),
        mode: InSituMode::Catalyst,
        exec,
        sched: Default::default(),
        faults: FaultPlan::none(),
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nek-sensei-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// FNV-1a 64 (same as the golden-image tests).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash every file in `dir` by name.
fn frame_hashes(dir: &std::path::Path) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let bytes = std::fs::read(entry.path()).expect("frame readable");
        out.insert(name, fnv1a64(&bytes));
    }
    out
}

#[test]
fn steady_state_publish_reuses_pooled_buffers() {
    run_ranks(1, MachineModel::test_tiny(), |comm| {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        let mut solver = pb146(&params, 4).build(comm);
        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
        let spec = SnapshotSpec {
            pressure: true,
            velocity: true,
            ..SnapshotSpec::default()
        };
        // Warm-up: the first publish creates the staging buffers.
        solver.step(comm);
        drop(solver.publish_snapshot(comm, &spec, &pool));
        let warm = pool.stats();
        assert!(warm.allocations > 0, "first publish must allocate");

        for _ in 0..5 {
            solver.step(comm);
            drop(solver.publish_snapshot(comm, &spec, &pool));
        }
        let steady = pool.stats();
        assert_eq!(
            steady.allocations, warm.allocations,
            "steady-state publishes must not grow the pool"
        );
        assert!(
            steady.reuses >= warm.reuses + 5,
            "every steady-state buffer must come from the freelist \
             ({} reuses after warm-up at {})",
            steady.reuses,
            warm.reuses
        );
        assert_eq!(
            steady.resident_bytes, warm.resident_bytes,
            "pool residency is flat once warm"
        );
    });
}

#[test]
fn pipelined_pool_high_water_is_bounded_by_depth() {
    // Synchronous runs drop each snapshot before the next publish, so
    // their pool peak is exactly one snapshot's worth of buffers; the
    // pipelined producer may run ahead, but backpressure caps it at
    // PIPELINE_DEPTH snapshots in flight per rank.
    let mut cfg = catalyst_config(ExecMode::Synchronous);
    cfg.trigger_every = 1; // publish every step: maximum pipeline pressure
    let sync = run_insitu(&cfg);
    cfg.exec = ExecMode::Pipelined;
    let piped = run_insitu(&cfg);

    assert!(sync.snapshot_pool_rank_peak > 0, "pool must be exercised");
    assert!(
        piped.snapshot_pool_rank_peak <= PIPELINE_DEPTH as u64 * sync.snapshot_pool_rank_peak,
        "pipelined pool peak {} exceeds depth-{PIPELINE_DEPTH} bound ({} per snapshot)",
        piped.snapshot_pool_rank_peak,
        sync.snapshot_pool_rank_peak
    );
    // And the depth actually buys overlap: the producer is not serialized.
    assert!(piped.metrics.time_to_solution < sync.metrics.time_to_solution);
}

#[test]
fn exec_modes_render_bitwise_identical_frames() {
    let sync_dir = scratch_dir("sync");
    let piped_dir = scratch_dir("piped");

    let mut cfg = catalyst_config(ExecMode::Synchronous);
    cfg.output_dir = Some(sync_dir.clone());
    let sync = run_insitu(&cfg);
    cfg.exec = ExecMode::Pipelined;
    cfg.output_dir = Some(piped_dir.clone());
    let piped = run_insitu(&cfg);

    assert!(sync.files_written > 0, "catalyst must render frames");
    assert_eq!(piped.files_written, sync.files_written);
    let sync_frames = frame_hashes(&sync_dir);
    let piped_frames = frame_hashes(&piped_dir);
    assert_eq!(
        piped_frames, sync_frames,
        "overlapped execution must not change a single rendered byte"
    );

    let _ = std::fs::remove_dir_all(&sync_dir);
    let _ = std::fs::remove_dir_all(&piped_dir);
}

#[test]
fn stalled_consumer_backpressures_without_corrupting_frames() {
    let clean_dir = scratch_dir("clean");
    let stalled_dir = scratch_dir("stalled");

    let mut cfg = catalyst_config(ExecMode::Pipelined);
    cfg.output_dir = Some(clean_dir.clone());
    let clean = run_insitu(&cfg);

    // Stall consumer rank 0 for 50 virtual seconds on its second frame:
    // the producer must fill the pipeline, block on backpressure, and
    // then drain — same frames, later finish, no deadlock.
    cfg.faults = FaultPlan {
        stalls: vec![ConsumerStall {
            endpoint: 0,
            at_step: 4,
            seconds: 50.0,
        }],
        ..FaultPlan::none()
    };
    cfg.output_dir = Some(stalled_dir.clone());
    let stalled = run_insitu(&cfg);

    assert_eq!(stalled.files_written, clean.files_written);
    assert_eq!(
        frame_hashes(&stalled_dir),
        frame_hashes(&clean_dir),
        "a stalled consumer must delay frames, never change or drop them"
    );
    assert!(
        stalled.metrics.time_to_solution > clean.metrics.time_to_solution,
        "the stall must surface as lost time (stalled {} vs clean {})",
        stalled.metrics.time_to_solution,
        clean.metrics.time_to_solution
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&stalled_dir);
}
