//! Integration: the full §4.1 in situ stack — solver → adaptor → bridge →
//! rendering/checkpointing — reproduces the paper's qualitative results at
//! miniature scale.

use commsim::MachineModel;
use nek_sensei::{run_insitu, InSituConfig, InSituMode};
use sem::cases::{pb146, CaseParams};

fn config(mode: InSituMode) -> InSituConfig {
    let mut params = CaseParams::pb146_default();
    params.elems = [3, 3, 4];
    params.order = 2;
    InSituConfig {
        case: pb146(&params, 8),
        ranks: 2,
        steps: 6,
        trigger_every: 3,
        machine: MachineModel::polaris(),
        image_size: (80, 60),
        mode,
        exec: Default::default(),
        sched: Default::default(),
        faults: commsim::FaultPlan::none(),
        output_dir: None,
        trace: false,
        telemetry: false,
        recovery: Default::default(),
    }
}

#[test]
fn paper_ordering_original_checkpoint_catalyst() {
    let orig = run_insitu(&config(InSituMode::Original));
    let chk = run_insitu(&config(InSituMode::Checkpointing));
    let cat = run_insitu(&config(InSituMode::Catalyst));

    // Time: Original < Checkpointing < Catalyst (Fig. 2's ordering).
    assert!(orig.metrics.time_to_solution < chk.metrics.time_to_solution);
    assert!(chk.metrics.time_to_solution < cat.metrics.time_to_solution);

    // Memory: Catalyst above Checkpointing (Fig. 3's ordering).
    assert!(cat.memory().host_aggregate_peak > chk.memory().host_aggregate_peak);

    // GPU footprint identical across configurations (the solver is the
    // same; only host-side coupling differs).
    assert_eq!(
        orig.memory().gpu_aggregate_peak,
        cat.memory().gpu_aggregate_peak
    );

    // Storage: only the I/O-ing configurations write.
    assert_eq!(orig.bytes_written, 0);
    assert!(chk.bytes_written > 0);
    assert!(cat.bytes_written > 0);

    // Catalyst triggered twice (steps 3 and 6), two images each.
    assert_eq!(cat.files_written, 4);
    // Checkpointing dumped twice per rank.
    assert_eq!(chk.files_written, 4);
}

#[test]
fn catalyst_d2h_traffic_scales_with_triggers() {
    let mut cfg = config(InSituMode::Catalyst);
    cfg.trigger_every = 3;
    let sparse = run_insitu(&cfg);
    cfg.trigger_every = 1;
    let dense = run_insitu(&cfg);
    // 3× the triggers ⇒ 3× the device→host staging bytes.
    assert_eq!(
        dense.metrics.totals.bytes_d2h,
        3 * sparse.metrics.totals.bytes_d2h
    );
}

#[test]
fn more_ranks_do_not_change_physics() {
    // The solver's kinetic energy must agree across decompositions; the
    // workflow wrapper must not perturb it.
    let r2 = run_insitu(&config(InSituMode::Catalyst));
    let mut cfg4 = config(InSituMode::Catalyst);
    cfg4.ranks = 4;
    let r4 = run_insitu(&cfg4);
    // Same steps; same global mesh: identical trigger counts and virtual
    // work distribution. We check the invariant observable: files written.
    assert_eq!(r2.files_written, r4.files_written);
}
